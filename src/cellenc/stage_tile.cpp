#include "cellenc/stage_tile.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <numeric>
#include <optional>
#include <utility>

#include "cell/trace.hpp"
#include "cellenc/stage_rate.hpp"
#include "common/error.hpp"
#include "decomp/chunk.hpp"
#include "decomp/work_queue.hpp"
#include "jp2k/codestream.hpp"
#include "jp2k/encoder.hpp"
#include "jp2k/t2_encoder.hpp"

namespace cj2k::cellenc {

namespace {

/// Code blocks one tile will contain, from geometry alone — the hull
/// ordinal bases must be known before any tile's Tier-1 runs, whatever the
/// processing order.  Matches make_block_grid's ceil_div grid exactly.
std::size_t blocks_for_geometry(const jp2k::TileRect& r,
                                const jp2k::CodingParams& params,
                                std::size_t ncomp) {
  std::size_t n = 0;
  for (const auto& info : jp2k::subband_layout(r.w, r.h, params.levels)) {
    n += ceil_div(info.w, params.cb_width) * ceil_div(info.h, params.cb_height);
  }
  return n * ncomp;
}

/// Converts a composed stage timing into a pipeline phase.  When the tile
/// owns an SPE group, the whole composed stage time runs on that group: the
/// compose rule already overlaps the stage's PPE assist with its SPE work
/// (seconds = max of the two), and that assist is per-group bookkeeping, not
/// a shared bottleneck.  Only explicitly appended phases (per-tile Tier-2)
/// use the shared serial resource.  A PPE-only group (no SPEs) is all
/// serial: there is genuinely one PPE doing everything.
decomp::PipelinePhase to_phase(const cell::StageTiming& s, int group_spes) {
  decomp::PipelinePhase ph;
  if (group_spes > 0) {
    ph.pool = s.seconds;
  } else {
    ph.serial = s.seconds;
  }
  return ph;
}

}  // namespace

PipelineResult encode_tiled(cell::Machine& machine, const Image& img,
                            const jp2k::CodingParams& params,
                            const PipelineOptions& opt,
                            const jp2k::TileGrid& grid) {
  const std::size_t ntiles = grid.num_tiles();
  const cell::MachineConfig& cfg = machine.config();
  const auto& cp = machine.model().params();
  const double hz = cp.clock_hz;
  PipelineResult res;
  res.tiles = ntiles;

  // --- Carve the pool into tile groups and build one group machine.  The
  // fronts run on it sequentially on the host; concurrency across groups
  // exists only in simulated time (the pipeline replay below), so one
  // machine reproduces every group's counters exactly.
  const decomp::TileGroupPlan gp =
      decomp::plan_tile_groups(ntiles, cfg.num_spes);
  res.tile_groups = gp.groups;
  res.spes_per_group = gp.spes_per_group;

  cell::MachineConfig gcfg = cfg;
  gcfg.num_spes = gp.spes_per_group;
  gcfg.num_ppe_threads = gp.spes_per_group > 0 ? 0 : cfg.num_ppe_threads;
  gcfg.chips = 1;
  gcfg.cost.chip_mem_bw =
      machine.total_mem_bw() / static_cast<double>(gp.groups);
  cell::Machine gmachine(gcfg);

  std::optional<cell::InvariantAudit> audit;
  if (opt.audit.enabled) {
    audit.emplace(opt.audit);
    gmachine.attach_audit(&*audit);
  }

  // Tiled tracing: one recorder sized for the FULL pool serves both the
  // group machine (fronts, SPE indices < spes_per_group) and the full
  // machine (distributed tail).  The SPE/PPE tracks replay the fronts
  // host-sequentially (the order counters are composed in); the driver
  // track additionally shows the pipelined tile-wave schedule, whose
  // makespan — not the track sum — is simulated_seconds.
  std::shared_ptr<cell::TraceRecorder> trec;
  if (opt.trace.enabled) {
    trec = std::make_shared<cell::TraceRecorder>(
        cfg.num_spes, cfg.num_ppe_threads, opt.trace.ring_capacity);
    gmachine.attach_trace(trec.get());
  }

  // --- Host processing order (testing hook; output is independent of it).
  std::vector<std::size_t> order = opt.tile_order;
  if (order.empty()) {
    order.resize(ntiles);
    std::iota(order.begin(), order.end(), std::size_t{0});
  }
  CJ2K_CHECK_MSG(order.size() == ntiles, "tile_order must list every tile");
  {
    std::vector<bool> seen(ntiles, false);
    for (std::size_t k : order) {
      CJ2K_CHECK_MSG(k < ntiles && !seen[k],
                     "tile_order must be a permutation of the tile indices");
      seen[k] = true;
    }
  }

  // HT tiles never take a lossy tail (no truncation points → no PCRD);
  // they flow through the lossless-shaped per-tile Tier-2 pipeline below.
  const bool lossy_tail = jp2k::uses_pcrd_rate_control(params);
  const bool distribute_tail = lossy_tail && opt.parallel_lossy_tail;

  // --- Hull ordinal bases: cumulative block counts in tile-index order
  // (the same bases jp2k::finish_tiles derives from the built tiles), so
  // the merged slope order is a strict total order over the whole image.
  std::vector<std::uint64_t> bases(ntiles, 0);
  {
    std::uint64_t base = 0;
    for (std::size_t i = 0; i < ntiles; ++i) {
      bases[i] = base;
      base += blocks_for_geometry(grid.tile(i), params, img.components());
    }
  }

  // --- Run every tile's front on the group machine, tagged with its tile
  // index so strict-audit reports name the offending tile.
  std::vector<TileFrontResult> fronts(ntiles);
  std::vector<HullCapture> hulls(ntiles);
  for (std::size_t k : order) {
    cell::AuditTileScope tile_scope(static_cast<int>(k));
    const jp2k::TileRect rect = grid.tile(k);
    const Image timg = jp2k::extract_tile(img, rect);
    hulls[k].wavelet = params.wavelet;
    hulls[k].ordinal_base = bases[k];
    fronts[k] = encode_tile_front(gmachine, timg, params, opt,
                                  distribute_tail ? &hulls[k] : nullptr);
    res.t1_symbols += fronts[k].t1_symbols;
    res.hull_extra_seconds += fronts[k].hull_extra_seconds;
    res.hull_serial_seconds += fronts[k].hull_serial_seconds;
    if (trec) {
      char args[48];
      std::snprintf(args, sizeof args, "\"tile\":%zu", k);
      trec->emit_instant(trec->driver_track(), "tile front done", "tile",
                         trec->clock(), args);
    }
  }

  // --- Aggregate the per-tile stage ledgers (index order) for reporting.
  res.stages = fronts[0].stages;
  for (std::size_t i = 1; i < ntiles; ++i) {
    for (std::size_t s = 0; s < res.stages.size(); ++s) {
      res.stages[s] += fronts[i].stages[s];
      res.stages[s].name = fronts[i].stages[s].name;
    }
  }

  // --- Pipeline phase lists, one item per tile in processing order.
  std::vector<std::vector<decomp::PipelinePhase>> items(ntiles);
  for (std::size_t j = 0; j < ntiles; ++j) {
    for (const auto& s : fronts[order[j]].stages) {
      items[j].push_back(to_phase(s, gp.spes_per_group));
    }
  }

  // Tile-wave boundaries on the driver track: per-tile finish instants of
  // the pipelined replay plus one span over its makespan.
  auto emit_waves = [&](const decomp::PipelineSchedule& ps) {
    if (!trec) return;
    char args[64];
    for (std::size_t j = 0; j < ntiles; ++j) {
      std::snprintf(args, sizeof args, "\"tile\":%zu,\"group\":%zu", order[j],
                    ps.item_group[j]);
      trec->emit_instant(trec->driver_track(), "tile wave finish", "tile",
                         ps.item_finish[j], args);
    }
    std::snprintf(args, sizeof args, "\"tiles\":%zu,\"groups\":%zu", ntiles,
                  gp.groups);
    trec->emit_span(trec->driver_track(), "tile schedule (pipelined)", "tile",
                    0.0, ps.makespan, args);
  };

  if (distribute_tail) {
    // --- Distributed lossy tail over the FULL pool: the fronts' waves are
    // a barrier (the global slope merge needs every tile's segments), then
    // one merge + scan + precinct-parallel Tier-2 across all tiles.
    const auto front_sched = decomp::schedule_pipeline(items, gp.groups);
    const double front_makespan = front_sched.makespan;
    emit_waves(front_sched);
    if (trec) {
      gmachine.attach_trace(nullptr);
      machine.attach_trace(trec.get());
      trec->set_clock(std::max(trec->clock(), front_makespan));
    }

    HullCapture merged;
    merged.wavelet = params.wavelet;
    for (std::size_t i = 0; i < ntiles; ++i) {
      for (auto& l : hulls[i].worker_lists) {
        merged.worker_lists.push_back(std::move(l));
      }
      merged.stats.passes_considered += hulls[i].stats.passes_considered;
      merged.stats.hull_points += hulls[i].stats.hull_points;
    }

    std::vector<jp2k::Tile*> ptrs;
    ptrs.reserve(ntiles);
    for (auto& f : fronts) ptrs.push_back(&f.tile);
    RateTailOptions tail_opts;
    tail_opts.overlap = opt.overlap_lossy_tail;
    LossyTailResult tail = stage_rate_tail_tiles(machine, grid, ptrs, img,
                                                 params, merged, tail_opts);
    res.codestream = std::move(tail.codestream);
    res.stages.push_back(tail.rate_timing);
    res.stages.push_back(tail.t2_timing);
    res.serial_rate_seconds = tail.serial_rate_seconds;
    res.serial_t2_seconds = tail.serial_t2_seconds;
    res.rate_stats = std::move(tail.stats);
    res.simulated_seconds =
        front_makespan + tail.rate_timing.seconds + tail.t2_timing.seconds;
    // The distributed tail occupies the full pool (merge + scan +
    // precinct-parallel Tier-2): a pool-side barrier phase for the service.
    res.tail_phase.pool = tail.rate_timing.seconds + tail.t2_timing.seconds;
  } else if (lossy_tail) {
    // --- Serial baseline tail after the front barrier: cross-tile rate
    // allocation + per-tile Tier-2 on the PPE, charged from its reported
    // work quantities (mirrors the single-tile serial baseline).
    const auto front_sched = decomp::schedule_pipeline(items, gp.groups);
    const double front_makespan = front_sched.makespan;
    emit_waves(front_sched);

    std::vector<jp2k::Tile> tiles;
    tiles.reserve(ntiles);
    for (auto& f : fronts) tiles.push_back(std::move(f.tile));
    jp2k::EncodeStats fstats;
    res.codestream = jp2k::finish_tiles(tiles, grid, img, params, &fstats);

    auto serial_stage = [&](cell::StageTiming& t, const char* span) {
      t.seconds = t.ppe;
      t.stall.ppe_serial = t.seconds;
      if (trec && t.seconds > 0) {
        const double t0 = trec->clock();
        trec->emit_span(trec->ppe_track(0), span, "ppe", t0, t.seconds);
        trec->emit_span(trec->driver_track(), t.name.c_str(), "stage", t0,
                        t.seconds);
        trec->advance_clock(t.seconds);
      }
    };

    cell::StageTiming rate_t;
    rate_t.name = "rate";
    rate_t.ppe = static_cast<double>(fstats.rate.passes_considered) *
                 cp.ppe_rate_cycles_per_pass / hz;
    serial_stage(rate_t, "rate (ppe serial)");
    res.stages.push_back(rate_t);
    res.serial_rate_seconds = rate_t.seconds;

    cell::StageTiming t2_t;
    t2_t.name = "t2";
    t2_t.ppe = static_cast<double>(res.codestream.size()) *
               cp.ppe_t2_cycles_per_byte / hz;
    serial_stage(t2_t, "t2 (ppe serial)");
    res.stages.push_back(t2_t);
    res.serial_t2_seconds = t2_t.seconds;

    res.simulated_seconds = front_makespan + rate_t.seconds + t2_t.seconds;
  } else {
    // --- Lossless tail: each tile's Tier-2 is an independent serial PPE
    // slot appended to that tile's phase list, so it pipelines under later
    // tiles' SPE work instead of stacking at the end.
    std::vector<std::vector<std::uint8_t>> packets(ntiles);
    const std::size_t bands =
        jp2k::subband_layout(grid.tile(0).w, grid.tile(0).h, params.levels)
            .size();
    const std::size_t overhead =
        jp2k::tile_part_overhead_bytes(img.components(), bands);
    cell::StageTiming t2_t;
    t2_t.name = "t2";
    for (std::size_t j = 0; j < ntiles; ++j) {
      const std::size_t k = order[j];
      packets[k] = jp2k::t2_encode(fronts[k].tile);
      decomp::PipelinePhase ph;
      ph.serial = static_cast<double>(packets[k].size() + overhead) *
                  cp.ppe_t2_cycles_per_byte / hz;
      items[j].push_back(ph);
      t2_t.ppe += ph.serial;
    }
    t2_t.seconds = t2_t.ppe;
    t2_t.stall.ppe_serial = t2_t.seconds;
    res.stages.push_back(t2_t);
    if (trec && t2_t.seconds > 0) {
      const double t0 = trec->clock();
      trec->emit_span(trec->ppe_track(0), "t2 (ppe serial)", "ppe", t0,
                      t2_t.seconds);
      trec->emit_span(trec->driver_track(), "t2", "stage", t0, t2_t.seconds);
      trec->advance_clock(t2_t.seconds);
    }

    std::vector<const jp2k::Tile*> cptrs;
    cptrs.reserve(ntiles);
    for (const auto& f : fronts) cptrs.push_back(&f.tile);
    res.codestream =
        jp2k::frame_codestream_tiles(cptrs, grid, img, params, packets);

    const auto full_sched = decomp::schedule_pipeline(items, gp.groups);
    emit_waves(full_sched);
    res.simulated_seconds = full_sched.makespan;
  }

  // Service view (DESIGN.md §12): per-tile {pool, serial} items in
  // tile-index order (the lossless branch already appended each tile's
  // serial Tier-2 phase above).  Lossy runs additionally carry the
  // cross-tile rate/Tier-2 tail as the barrier phase — pool-side for the
  // distributed tail (set in its branch above), serial for the baseline.
  res.tile_items.assign(ntiles, decomp::PipelinePhase{});
  for (std::size_t j = 0; j < ntiles; ++j) {
    decomp::PipelinePhase it;
    for (const auto& ph : items[j]) {
      it.pool += ph.pool;
      it.serial += ph.serial;
    }
    res.tile_items[order[j]] = it;
  }
  if (lossy_tail && !distribute_tail) {
    res.tail_phase.serial = res.serial_rate_seconds + res.serial_t2_seconds;
  }

  for (const auto& s : res.stages) {
    res.dma_bytes += s.dma_bytes;
    res.overlap_saved_seconds += s.overlap_saved;
    res.dma_overlap_saved_seconds += s.dma_overlap_saved;
  }
  if (audit) {
    res.audit = audit->report();
    gmachine.attach_audit(nullptr);
  }
  if (trec) {
    gmachine.attach_trace(nullptr);
    machine.attach_trace(nullptr);
    res.trace = std::move(trec);
  }
  return res;
}

}  // namespace cj2k::cellenc
