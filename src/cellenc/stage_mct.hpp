// Pipeline stage: merged level shift + inter-component transform over the
// chunk decomposition (paper §3.2 — fully parallelized on PPE + SPEs, the
// two stages fused to halve their DMA traffic).
#pragma once

#include <vector>

#include "backend/kernel_backend.hpp"
#include "cell/machine.hpp"
#include "common/aligned_buffer.hpp"
#include "image/image.hpp"

namespace cj2k::cellenc {

/// Lossless path: level shift (+ RCT when `color`) in place on the planes.
cell::StageTiming stage_mct_lossless(
    cell::Machine& m, std::vector<Plane>& planes, bool color, unsigned depth,
    const backend::KernelBackend& bk = backend::cell_model());

/// Lossy path: level shift (+ ICT when `color`), integer planes -> float
/// planes of the same stride (cache-line aligned storage).  Reads directly
/// from the working planes the read stage produced — no intermediate copy.
cell::StageTiming stage_mct_lossy(
    cell::Machine& m, const std::vector<Plane>& planes,
    std::vector<AlignedBuffer<float>>& fplanes, std::size_t stride,
    bool color, unsigned depth,
    const backend::KernelBackend& bk = backend::cell_model());

/// Fixed-point lossy path: level shift (+ fixed ICT when `color`), integer
/// planes -> Q13 planes (the paper's §4 "before" configuration).
cell::StageTiming stage_mct_lossy_fixed(
    cell::Machine& m, const std::vector<Plane>& planes,
    std::vector<Plane>& fxplanes, bool color, unsigned depth,
    const backend::KernelBackend& bk = backend::cell_model());

}  // namespace cj2k::cellenc
