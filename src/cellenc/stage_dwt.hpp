// Pipeline stage: multilevel 2-D DWT on the Cell (paper §3.2/§4).
//
// Vertical filtering: the plane is split into constant-width column groups
// via the chunk decomposition; each SPE streams its group's rows through a
// small Local Store ring, running the merged split+lift(+scale) schedule
// (one DMA read and ~1.5 writes per row instead of 3/6 passes).  The PPE
// handles the remainder columns.
//
// Horizontal filtering: rows are split evenly across the SPEs; each row is
// fetched, deinterleaved (shuffles), lifted on its halves and written back
// as L|H.
#pragma once

#include "backend/kernel_backend.hpp"
#include "cell/machine.hpp"
#include "common/span2d.hpp"
#include "image/image.hpp"

namespace cj2k::cellenc {

struct DwtOptions {
  bool merged_vertical = true;   ///< false = naive multipass (ablation A).
  std::size_t colgroup_elems = 0;  ///< 0 = auto (width/SPEs); else fixed
                                   ///< column-group width (ablation C).
};

/// In-place multilevel 5/3; returns the summed stage timing across levels.
cell::StageTiming stage_dwt53(
    cell::Machine& m, Span2d<Sample> plane, int levels,
    const DwtOptions& opt = {},
    const backend::KernelBackend& bk = backend::cell_model());

/// In-place multilevel 9/7 (float).
cell::StageTiming stage_dwt97(
    cell::Machine& m, Span2d<float> plane, int levels,
    const DwtOptions& opt = {},
    const backend::KernelBackend& bk = backend::cell_model());

/// In-place multilevel 9/7 in Q13 fixed point — the arithmetic the paper
/// replaces with float on the SPE (§4).  Always uses the merged vertical
/// schedule.
cell::StageTiming stage_dwt97_fixed(
    cell::Machine& m, Span2d<Sample> plane, int levels,
    const DwtOptions& opt = {},
    const backend::KernelBackend& bk = backend::cell_model());

}  // namespace cj2k::cellenc
