#include "cellenc/pipeline.hpp"

#include <algorithm>
#include <optional>

#include "cellenc/kernels.hpp"
#include "cellenc/stage_mct.hpp"
#include "cellenc/stage_quant.hpp"
#include "cellenc/stage_rate.hpp"
#include "cellenc/stage_tile.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "decomp/chunk.hpp"
#include "jp2k/dwt2d.hpp"
#include "jp2k/encoder.hpp"
#include "jp2k/ht_block.hpp"
#include "jp2k/quant.hpp"
#include "jp2k/rate_control.hpp"
#include "jp2k/t2_encoder.hpp"
#include "jp2k/tile_grid.hpp"

namespace cj2k::cellenc {

double PipelineResult::stage_seconds(const std::string& name) const {
  for (const auto& s : stages) {
    if (s.name == name) return s.seconds;
  }
  return 0.0;
}

namespace {

/// The "read component data" stage: stream the source planes into the
/// working copies (Jasper's intermediate-type conversion).  Partially
/// parallelized, per the paper: SPE chunks move their columns by DMA, the
/// PPE handles the remainder and the (serial) stream bookkeeping.
cell::StageTiming stage_read(cell::Machine& m, const Image& img,
                             std::vector<Plane>& work) {
  const std::size_t w = img.width();
  const std::size_t h = img.height();
  work.clear();
  for (std::size_t c = 0; c < img.components(); ++c) {
    work.emplace_back(w, h);
  }
  const auto plan = decomp::plan_chunks(
      w, sizeof(Sample), static_cast<std::size_t>(m.num_spes()));

  auto spe_work = [&](int i, cell::SpeContext& ctx) {
    if (static_cast<std::size_t>(i) >= plan.spe_chunks.size()) return;
    const auto& ch = plan.spe_chunks[static_cast<std::size_t>(i)];
    // Pure copy: a fully asynchronous fenced get->put chain over two
    // buffers/tags with no mid-stream waits.  Each fence orders a buffer's
    // next command after its previous one on the same tag (put after get,
    // re-targeting get after put), so the chain is race-free on real
    // hardware with a single tag drain at the end.
    Sample* buf[2] = {ctx.ls.alloc<Sample>(ch.width),
                      ctx.ls.alloc<Sample>(ch.width)};
    std::size_t k = 0;
    for (std::size_t c = 0; c < img.components(); ++c) {
      for (std::size_t y = 0; y < h; ++y, ++k) {
        const unsigned t = static_cast<unsigned>(k & 1);
        dma_getf_row_tagged(ctx.dma, buf[t], img.plane(c).row(y) + ch.x0,
                            ch.width, t);
        dma_putf_row_tagged(ctx.dma, buf[t], work[c].row(y) + ch.x0,
                            ch.width, t);
      }
    }
    ctx.dma.wait_all();
    ctx.ls.reset();
  };
  auto ppe_work = [&](cell::OpCounters& c) {
    const auto& rem = plan.remainder;
    for (std::size_t cc = 0; cc < img.components(); ++cc) {
      for (std::size_t y = 0; y < h; ++y) {
        if (rem.width > 0) {
          std::copy_n(img.plane(cc).row(y) + rem.x0, rem.width,
                      work[cc].row(y) + rem.x0);
        }
      }
    }
    // Conversion + stream bookkeeping: ~2 scalar ops per remainder sample
    // plus a serial per-row cost for the Jasper stream traversal.
    c.s_int += static_cast<std::uint64_t>(rem.width) * h *
                   img.components() * 2 +
               h * img.components() * 64;
  };
  return m.run_data_parallel("read", spe_work, ppe_work);
}

/// Attaches an InvariantAudit to the machine for the encode's lifetime and
/// detaches on every exit path (strict mode throws mid-encode).
class ScopedAudit {
 public:
  ScopedAudit(cell::Machine& m, const cell::AuditConfig& cfg) : m_(m) {
    if (cfg.enabled) {
      audit_.emplace(cfg);
      m_.attach_audit(&*audit_);
    }
  }
  ~ScopedAudit() {
    if (audit_) m_.attach_audit(nullptr);
  }
  ScopedAudit(const ScopedAudit&) = delete;
  ScopedAudit& operator=(const ScopedAudit&) = delete;

  cell::AuditReport report() const {
    return audit_ ? audit_->report() : cell::AuditReport{};
  }

 private:
  cell::Machine& m_;
  std::optional<cell::InvariantAudit> audit_;
};

/// Attaches a TraceRecorder to the machine for the encode's lifetime and
/// detaches on every exit path; the recorder itself outlives the scope (it
/// is handed to PipelineResult::trace as a shared_ptr).
class ScopedTrace {
 public:
  ScopedTrace(cell::Machine& m, const cell::TraceConfig& cfg) : m_(m) {
    if (cfg.enabled) {
      rec_ = std::make_shared<cell::TraceRecorder>(
          m.num_spes(), m.num_ppe_threads(), cfg.ring_capacity);
      m_.attach_trace(rec_.get());
    }
  }
  ~ScopedTrace() {
    if (rec_) m_.attach_trace(nullptr);
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  std::shared_ptr<cell::TraceRecorder> recorder() const { return rec_; }

 private:
  cell::Machine& m_;
  std::shared_ptr<cell::TraceRecorder> rec_;
};

/// Fold the run's per-stage timings and totals into the unified metrics
/// registry (DESIGN.md §11).  Occupancy is stall.busy / seconds; the
/// critical-path share is against the stage-time sum (== simulated seconds
/// on single-tile runs; on tiled runs the pipelined makespan is smaller,
/// and both are published).
void fill_metrics(PipelineResult& res) {
  cell::MetricsRegistry& mr = res.metrics;
  double stage_sum = 0.0;
  for (const auto& s : res.stages) stage_sum += s.seconds;
  mr.set("sim.seconds", res.simulated_seconds);
  mr.set("sim.stage_sum_seconds", stage_sum);
  mr.set("sim.overlap_saved_seconds", res.overlap_saved_seconds);
  mr.set("sim.dma_overlap_saved_seconds", res.dma_overlap_saved_seconds);
  mr.set("dma.bytes", static_cast<double>(res.dma_bytes));
  mr.set("t1.symbols", static_cast<double>(res.t1_symbols));
  mr.set("tiles", static_cast<double>(res.tiles));
  mr.set("tile_groups", static_cast<double>(res.tile_groups));
  for (const auto& s : res.stages) {
    const std::string p = "stage." + s.name + ".";
    mr.set(p + "seconds", s.seconds);
    mr.set(p + "dma_bytes", static_cast<double>(s.dma_bytes));
    mr.set(p + "occupancy", s.seconds > 0 ? s.stall.busy / s.seconds : 0.0);
    mr.set(p + "critical_path_share",
           stage_sum > 0 ? s.seconds / stage_sum : 0.0);
    mr.set(p + "stall.busy", s.stall.busy);
    mr.set(p + "stall.dma_wait", s.stall.dma_wait);
    mr.set(p + "stall.queue_empty", s.stall.queue_empty);
    mr.set(p + "stall.ppe_serial", s.stall.ppe_serial);
    mr.set(p + "stall.channel_stall", s.stall.channel_stall);
  }
  if (res.trace) {
    mr.set("trace.events", static_cast<double>(res.trace->total_events()));
    mr.set("trace.dropped",
           static_cast<double>(res.trace->dropped_events()));
  }
}

}  // namespace

TileFrontResult encode_tile_front(cell::Machine& machine, const Image& img,
                                  const jp2k::CodingParams& params,
                                  const PipelineOptions& opt,
                                  HullCapture* hulls) {
  const DwtOptions& dwt = opt.dwt;
  const backend::KernelBackend& bk = backend::get(opt.backend);
  TileFrontResult res;
  const std::size_t w = img.width();
  const std::size_t h = img.height();
  const std::size_t ncomp = img.components();
  const bool color = params.mct && ncomp >= 3;
  const unsigned depth = img.bit_depth();

  jp2k::Tile& tile = res.tile;
  tile.width = w;
  tile.height = h;
  tile.levels = params.levels;
  tile.layers = params.layers;
  tile.progression = static_cast<int>(params.progression);

  // --- Read / convert -------------------------------------------------------
  std::vector<Plane> work;
  res.stages.push_back(stage_read(machine, img, work));

  std::vector<Span2d<const Sample>> coeff_views;
  std::vector<Plane> qplanes;
  std::vector<AlignedBuffer<float>> fplanes;

  if (params.wavelet == jp2k::WaveletKind::kReversible53) {
    // --- Level shift + RCT --------------------------------------------------
    res.stages.push_back(
        stage_mct_lossless(machine, work, color, depth, bk));

    // --- DWT ----------------------------------------------------------------
    cell::StageTiming dwt_t;
    dwt_t.name = "dwt";
    for (std::size_t c = 0; c < ncomp; ++c) {
      dwt_t += stage_dwt53(machine, work[c].view(), params.levels, dwt, bk);
    }
    dwt_t.name = "dwt";
    res.stages.push_back(dwt_t);

    // --- Tile skeleton ------------------------------------------------------
    for (std::size_t c = 0; c < ncomp; ++c) {
      jp2k::TileComponent tc;
      for (const auto& info : jp2k::subband_layout(w, h, params.levels)) {
        jp2k::Subband sb;
        sb.info = info;
        sb.quant_step = 1.0;
        jp2k::make_block_grid(sb, params.cb_width, params.cb_height);
        tc.subbands.push_back(std::move(sb));
      }
      tile.components.push_back(std::move(tc));
      coeff_views.push_back(work[c].view());
    }
  } else if (params.fixed_point_97) {
    // --- Fixed-point lossy path (paper §4 "before") --------------------------
    std::vector<Plane> fxplanes;
    fxplanes.reserve(ncomp);
    for (std::size_t c = 0; c < ncomp; ++c) fxplanes.emplace_back(w, h);
    res.stages.push_back(
        stage_mct_lossy_fixed(machine, work, fxplanes, color, depth, bk));

    cell::StageTiming dwt_t;
    for (std::size_t c = 0; c < ncomp; ++c) {
      dwt_t += stage_dwt97_fixed(machine, fxplanes[c].view(), params.levels,
                                 dwt, bk);
    }
    dwt_t.name = "dwt";
    res.stages.push_back(dwt_t);

    cell::StageTiming quant_t;
    qplanes.reserve(ncomp);
    for (std::size_t c = 0; c < ncomp; ++c) {
      jp2k::TileComponent tc;
      for (const auto& info : jp2k::subband_layout(w, h, params.levels)) {
        jp2k::Subband sb;
        sb.info = info;
        sb.quant_step = jp2k::quant_step_for_band(
            jp2k::effective_base_quant_step(params), params.wavelet,
            info.level, info.orient, params.levels);
        jp2k::make_block_grid(sb, params.cb_width, params.cb_height);
        tc.subbands.push_back(std::move(sb));
      }
      tile.components.push_back(std::move(tc));

      qplanes.emplace_back(w, h);
      quant_t += stage_quant_fixed(machine, fxplanes[c].view(),
                                   qplanes[c].view(), tile.components[c],
                                   bk);
      coeff_views.push_back(qplanes[c].view());
    }
    quant_t.name = "quant";
    res.stages.push_back(quant_t);
  } else {
    // --- Level shift + ICT (into float planes) ------------------------------
    const std::size_t stride = work[0].stride();
    fplanes.reserve(ncomp);
    for (std::size_t c = 0; c < ncomp; ++c) {
      fplanes.emplace_back(stride * h);
    }
    // The paper's merged kernel reads the converted integer planes.
    res.stages.push_back(
        stage_mct_lossy(machine, work, fplanes, stride, color, depth, bk));

    // --- DWT ----------------------------------------------------------------
    cell::StageTiming dwt_t;
    dwt_t.name = "dwt";
    for (std::size_t c = 0; c < ncomp; ++c) {
      Span2d<float> fv(fplanes[c].data(), w, h, stride);
      dwt_t += stage_dwt97(machine, fv, params.levels, dwt, bk);
    }
    dwt_t.name = "dwt";
    res.stages.push_back(dwt_t);

    // --- Tile skeleton + quantization --------------------------------------
    cell::StageTiming quant_t;
    quant_t.name = "quant";
    qplanes.reserve(ncomp);
    for (std::size_t c = 0; c < ncomp; ++c) {
      jp2k::TileComponent tc;
      for (const auto& info : jp2k::subband_layout(w, h, params.levels)) {
        jp2k::Subband sb;
        sb.info = info;
        sb.quant_step = jp2k::quant_step_for_band(
            jp2k::effective_base_quant_step(params), params.wavelet,
            info.level, info.orient, params.levels);
        jp2k::make_block_grid(sb, params.cb_width, params.cb_height);
        tc.subbands.push_back(std::move(sb));
      }
      tile.components.push_back(std::move(tc));

      qplanes.emplace_back(w, h);
      Span2d<const float> fv(fplanes[c].data(), w, h, stride);
      quant_t += stage_quant(machine, fv, qplanes[c].view(),
                             tile.components[c], bk);
      coeff_views.push_back(qplanes[c].view());
    }
    quant_t.name = "quant";
    res.stages.push_back(quant_t);
  }

  // --- Tier-1 over the work queue; with hull capture the same workers also
  // build each block's R-D hull as it finishes (the hull cost hides under
  // the T1 span — the fused schedule accounts for it). -----------------------
  const T1StageResult t1 =
      stage_t1(machine, tile, coeff_views, opt.t1_dist, params.t1, hulls,
               params.block_coder, bk);
  res.stages.push_back(t1.timing);
  res.t1_symbols = t1.total_symbols;
  res.hull_extra_seconds = t1.hull_extra_seconds;
  res.hull_serial_seconds = t1.hull_serial_seconds;
  return res;
}

PipelineResult CellEncoder::encode(const Image& img,
                                   const jp2k::CodingParams& params,
                                   const PipelineOptions& opt) {
  Timer wall;
  const jp2k::TileGrid grid = jp2k::TileGrid::plan(
      img.width(), img.height(), params.tiles_x, params.tiles_y);
  if (grid.num_tiles() > 1) {
    PipelineResult res = encode_tiled(machine_, img, params, opt, grid);
    res.wall_seconds = wall.seconds();
    fill_metrics(res);
    return res;
  }

  PipelineResult res;
  const auto& cp = machine_.model().params();

  ScopedAudit audit(machine_, opt.audit);
  ScopedTrace trace(machine_, opt.trace);

  // HT never takes the lossy tail: no truncation points means no PCRD rate
  // stage at all (the stage_rate fast path promised by the HT backend).
  const bool lossy_tail = jp2k::uses_pcrd_rate_control(params);
  const bool distribute_tail = lossy_tail && opt.parallel_lossy_tail;
  HullCapture hulls;
  hulls.wavelet = params.wavelet;

  TileFrontResult front = encode_tile_front(
      machine_, img, params, opt, distribute_tail ? &hulls : nullptr);
  jp2k::Tile& tile = front.tile;
  res.stages = std::move(front.stages);
  const std::size_t front_count = res.stages.size();
  res.t1_symbols = front.t1_symbols;
  res.hull_extra_seconds = front.hull_extra_seconds;
  res.hull_serial_seconds = front.hull_serial_seconds;

  if (distribute_tail) {
    // --- Distributed lossy tail: k-way slope merge + serial greedy scan +
    // precinct-parallel Tier-2 (byte-identical to jp2k::finish_tile).
    // With overlap_lossy_tail the serial residue is pipelined against the
    // parallel work (released sizing, streaming stitch). --------------------
    RateTailOptions tail_opts;
    tail_opts.overlap = opt.overlap_lossy_tail;
    LossyTailResult tail =
        stage_rate_tail(machine_, tile, img, params, hulls, tail_opts);
    res.codestream = std::move(tail.codestream);
    res.stages.push_back(tail.rate_timing);
    res.stages.push_back(tail.t2_timing);
    res.serial_rate_seconds = tail.serial_rate_seconds;
    res.serial_t2_seconds = tail.serial_t2_seconds;
    res.rate_stats = std::move(tail.stats);
  } else {
    // --- Serial baseline tail (the paper's configuration): rate control +
    // Tier-2 + framing via the shared serial implementation; simulated PPE
    // time is charged from the work quantities it reports. -------------------
    jp2k::EncodeStats fstats;
    res.codestream = jp2k::finish_tile(tile, img, params, &fstats);

    cell::TraceRecorder* rec = machine_.trace();
    auto serial_stage = [&](cell::StageTiming& t, const char* span) {
      t.seconds = t.ppe;
      t.stall.ppe_serial = t.seconds;  // The whole stage is PPE-serial.
      if (rec != nullptr && t.seconds > 0) {
        const double t0 = rec->clock();
        rec->emit_span(rec->ppe_track(0), span, "ppe", t0, t.seconds);
        rec->emit_span(rec->driver_track(), t.name.c_str(), "stage", t0,
                       t.seconds);
        rec->advance_clock(t.seconds);
      }
    };

    if (lossy_tail) {
      cell::StageTiming rate_t;
      rate_t.name = "rate";
      rate_t.ppe = static_cast<double>(fstats.rate.passes_considered) *
                   cp.ppe_rate_cycles_per_pass / cp.clock_hz;
      serial_stage(rate_t, "rate (ppe serial)");
      res.stages.push_back(rate_t);
      res.serial_rate_seconds = rate_t.seconds;
    }

    cell::StageTiming t2_t;
    t2_t.name = "t2";
    t2_t.ppe = static_cast<double>(res.codestream.size()) *
               cp.ppe_t2_cycles_per_byte / cp.clock_hz;
    serial_stage(t2_t, "t2 (ppe serial)");
    res.stages.push_back(t2_t);
    res.serial_t2_seconds = t2_t.seconds;
  }

  for (const auto& s : res.stages) {
    res.simulated_seconds += s.seconds;
    res.overlap_saved_seconds += s.overlap_saved;
    res.dma_overlap_saved_seconds += s.dma_overlap_saved;
    res.dma_bytes += s.dma_bytes;
  }

  // Service view (DESIGN.md §12): collapse the run into one {pool, serial}
  // item.  The data-parallel front occupies the SPE pool; tail stages are
  // classified by their stall ledger (fully PPE-serial → serial resource).
  // Lossy runs report the rate/Tier-2 tail as the barrier phase; on
  // lossless/HT runs the serial Tier-2 folds into the tile item, matching
  // the tiled scheduler's per-tile Tier-2 phases.
  decomp::PipelinePhase item;
  for (std::size_t i = 0; i < front_count; ++i) {
    item.pool += res.stages[i].seconds;
  }
  decomp::PipelinePhase tail_ph;
  for (std::size_t i = front_count; i < res.stages.size(); ++i) {
    const auto& s = res.stages[i];
    if (s.seconds > 0 && s.stall.ppe_serial >= s.seconds) {
      tail_ph.serial += s.seconds;
    } else {
      tail_ph.pool += s.seconds;
    }
  }
  if (lossy_tail) {
    res.tail_phase = tail_ph;
  } else {
    item.pool += tail_ph.pool;
    item.serial += tail_ph.serial;
  }
  res.tile_items.assign(1, item);

  res.audit = audit.report();
  res.trace = trace.recorder();
  res.wall_seconds = wall.seconds();
  fill_metrics(res);
  return res;
}

}  // namespace cj2k::cellenc
