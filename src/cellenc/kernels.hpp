// SPE kernel building blocks shared by the pipeline stages: exact-size DMA
// row transfers and SIMD row arithmetic written against the instrumented
// cell::Simd layer.  Every helper both performs the real computation and
// leaves the op counts the cost model consumes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cell/dma.hpp"
#include "cell/simd.hpp"
#include "common/align.hpp"
#include "image/image.hpp"

namespace cj2k::cellenc {

/// DMA of exactly `elems` 4-byte elements: a cache-line/quad-word bulk part
/// plus 4-byte tail transfers (the "additional programming" the paper's
/// scheme avoids when widths are line multiples — the tail also shows up in
/// the unaligned-transfer counters and thus in the bandwidth model).
void dma_get_row(cell::DmaEngine& dma, void* ls_dst, const void* main_src,
                 std::size_t elems);
void dma_put_row(cell::DmaEngine& dma, const void* ls_src, void* main_dst,
                 std::size_t elems);

/// Tag-grouped asynchronous row transfers (double-buffering building
/// blocks): every piece of the row — bulk <=16 KB transfers plus 4-byte
/// tails — is issued on `tag` without waiting.  Completion is claimed with
/// dma.wait_tag()/wait_tag_mask()/wait_all().  The fenced variants order
/// the whole row after everything previously issued on the same tag (the
/// mfc_getf/putf idiom), which is what lets a kernel re-target a Local
/// Store buffer whose previous transfer is still in flight.
void dma_get_row_tagged(cell::DmaEngine& dma, void* ls_dst,
                        const void* main_src, std::size_t elems,
                        unsigned tag);
void dma_put_row_tagged(cell::DmaEngine& dma, const void* ls_src,
                        void* main_dst, std::size_t elems, unsigned tag);
void dma_getf_row_tagged(cell::DmaEngine& dma, void* ls_dst,
                         const void* main_src, std::size_t elems,
                         unsigned tag);
void dma_putf_row_tagged(cell::DmaEngine& dma, const void* ls_src,
                         void* main_dst, std::size_t elems, unsigned tag);

/// Audit-driven row padding: widens a row transfer of 4-byte elements to a
/// whole number of 128-byte cache lines whenever the plane's stride has
/// room, so awkward widths (e.g. the 1586-wide Fig.5 workload) keep the
/// whole transfer on the efficient bulk path instead of tripping the DMA
/// audit's tail counters.  Plane rows are cache-line aligned and their
/// stride padding is zero-initialized, so a caller widening its transfers
/// must keep the tail bytes stable: either fetch-and-restore them untouched
/// or write zeros.
inline std::size_t padded_row_elems(std::size_t elems,
                                    std::size_t stride_elems) {
  const std::size_t padded =
      round_up(elems, kCacheLineBytes / sizeof(Sample));
  return padded <= stride_elems ? padded : elems;
}

// --- SIMD row arithmetic ----------------------------------------------------
// All row helpers require `n` to be reachable with a scalar tail; pointers
// must be quad-word aligned (Local Store allocations are).

/// Merged level-shift + RCT on three integer rows (lossless MCT kernel).
void simd_shift_rct_row(cell::Simd& s, Sample* r, Sample* g, Sample* b,
                        std::size_t n, unsigned depth);

/// Level shift only (single-component / extra components).
void simd_shift_row(cell::Simd& s, Sample* x, std::size_t n, unsigned depth);

/// Merged level-shift + ICT: integer RGB rows -> float YCbCr rows.
void simd_shift_ict_row(cell::Simd& s, const Sample* r, const Sample* g,
                        const Sample* b, float* y, float* cb, float* cr,
                        std::size_t n, unsigned depth);

/// Integer->float with level shift (non-color lossy path).
void simd_shift_to_float_row(cell::Simd& s, const Sample* x, float* out,
                             std::size_t n, unsigned depth);

/// row_d -= (row_a + row_b) >> 1   (5/3 vertical predict, across a chunk).
void simd_predict53_row(cell::Simd& s, Sample* d, const Sample* a,
                        const Sample* b, std::size_t n);

/// row_d += (row_a + row_b + 2) >> 2   (5/3 vertical update).
void simd_update53_row(cell::Simd& s, Sample* d, const Sample* a,
                       const Sample* b, std::size_t n);

/// row_x += c * (row_a + row_b)   (9/7 vertical lifting step, float).
void simd_lift97_row(cell::Simd& s, float* x, const float* a, const float* b,
                     float c, std::size_t n);

/// row_x *= c   (9/7 scaling).
void simd_scale_row(cell::Simd& s, float* x, float c, std::size_t n);

/// Q13 fixed-point 9/7 lifting step (the ablation the paper replaces):
/// row_x += fix_mul(c_q13, row_a + row_b) — charged as emulated multiplies.
void simd_lift97_fixed_row(cell::Simd& s, std::int32_t* x,
                           const std::int32_t* a, const std::int32_t* b,
                           std::int32_t c_q13, std::size_t n);

/// Dead-zone quantization of a float row into integer indices.
void simd_quant_row(cell::Simd& s, const float* in, Sample* out,
                    std::size_t n, float inv_step);

/// Splits an interleaved row into its even- and odd-indexed halves
/// (the horizontal-filtering "splitting step"; 2 loads + 2 shuffles +
/// 2 stores per 8 elements on the SPU).
void simd_deinterleave_row(cell::Simd& s, const Sample* in, Sample* even,
                           Sample* odd, std::size_t n);
void simd_deinterleave_row(cell::Simd& s, const float* in, float* even,
                           float* odd, std::size_t n);

/// Local-Store to Local-Store copy with arbitrary 4-byte alignment (the SPU
/// does this with quad loads + shuffles; charged accordingly).
void ls_copy(cell::Simd& s, void* dst, const void* src, std::size_t bytes);

// --- Horizontal DWT row kernels ---------------------------------------------
// One full in-LS row each: deinterleave into even/odd halves, lifting with
// clamped mirror boundaries, (9/7) scaling — matching the serial analyze
// functions bit for bit.

/// In-LS horizontal 5/3 of one row (matches dwt53::analyze).
void simd_dwt53_h_row(cell::Simd& s, const Sample* in, Sample* even,
                      Sample* odd, std::size_t n);

/// In-LS horizontal 9/7 of one row (matches dwt97::analyze).
void simd_dwt97_h_row(cell::Simd& s, const float* in, float* even, float* odd,
                      std::size_t n);

/// In-LS horizontal 9/7 in Q13 fixed point (matches dwt97::analyze_fixed).
void simd_dwt97_fixed_h_row(cell::Simd& s, const Sample* in, Sample* even,
                            Sample* odd, std::size_t n);

// --- Q13 fixed-point kernels (the paper's §4 "before" arithmetic) -----------
// Each 32-bit multiply is an *emulated* SPE instruction sequence, which is
// exactly why these kernels lose to the float ones in the cost model.

/// Merged level-shift + fixed-point ICT: integer RGB rows -> Q13 YCbCr.
void simd_shift_ict_fixed_row(cell::Simd& s, const Sample* r,
                              const Sample* g, const Sample* b, Sample* y,
                              Sample* cb, Sample* cr, std::size_t n,
                              unsigned depth);

/// Level shift to Q13 (non-color fixed path).
void simd_shift_to_fixed_row(cell::Simd& s, const Sample* x, Sample* out,
                             std::size_t n, unsigned depth);

/// row_x *= c_q13 (Q13 multiply; 9/7 fixed scaling step).
void simd_scale_fixed_row(cell::Simd& s, Sample* x, Sample c_q13,
                          std::size_t n);

/// Fixed-point dead-zone quantization via Q16 reciprocal multiply
/// (64-bit product = two emulated multiplies per vector).
void simd_quant_fixed_row(cell::Simd& s, const Sample* in_q13, Sample* out,
                          std::size_t n, std::int64_t inv_q16);

}  // namespace cj2k::cellenc
