#include "cellenc/stage_dwt.hpp"

#include <algorithm>

#include "cellenc/kernels.hpp"
#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "decomp/chunk.hpp"
#include "jp2k/dwt53.hpp"
#include "jp2k/dwt97.hpp"
#include "jp2k/dwt_merged.hpp"

namespace cj2k::cellenc {

namespace {

std::ptrdiff_t mirror(std::ptrdiff_t i, std::ptrdiff_t n) {
  if (n == 1) return 0;
  while (i < 0 || i >= n) {
    if (i < 0) i = -i;
    if (i >= n) i = 2 * (n - 1) - i;
  }
  return i;
}

/// PPE scalar-op charge per sample per lifting sweep (documented estimate:
/// two adds, a shift, a load and a store).
constexpr std::uint64_t kPpeLiftOpsPerSample = 5;

// ===========================================================================
// Vertical filtering
// ===========================================================================

/// Merged vertical 5/3 on one SPE's column group: Local Store ring of K
/// rows, one DMA get per input row, low rows written in place, high rows
/// parked in `aux` and copied back at the end.
void spe_vertical53_merged(cell::SpeContext& ctx,
                           const backend::KernelBackend& bk,
                           Span2d<Sample> plane, std::size_t x0,
                           std::size_t cw, std::size_t hh,
                           Span2d<Sample> aux) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(hh);
  if (n < 2) return;
  constexpr std::size_t K = 6;
  Sample* ring = ctx.ls.alloc<Sample>(K * cw);
  const auto slot = [&](std::ptrdiff_t i) {
    return ring + static_cast<std::size_t>(mirror(i, n)) % K * cw;
  };
  const auto tag_of = [&](std::ptrdiff_t r) {
    return static_cast<unsigned>(r) % static_cast<unsigned>(K);
  };
  // Tag-per-slot ring: row r streams in on tag r%K and the finished row
  // streams back out on the same tag, so one wait_tag_mask claims a slot's
  // whole history.  Gets are fenced, which is what lets a slot be
  // re-targeted while its previous occupant's put is still in flight.
  // ensure() prefetches one row beyond what the lifting step consumes
  // before claiming the rows it needs — the get of row f+2 rides under the
  // lifting of rows f and f-1.
  std::ptrdiff_t loaded = -1;
  std::ptrdiff_t waited = -1;
  const auto fetch = [&](std::ptrdiff_t upto) {
    upto = std::min(upto, n - 1);
    while (loaded < upto) {
      ++loaded;
      dma_getf_row_tagged(ctx.dma,
                          ring + static_cast<std::size_t>(loaded) % K * cw,
                          plane.row(static_cast<std::size_t>(loaded)) + x0,
                          cw, tag_of(loaded));
    }
  };
  const auto ensure = [&](std::ptrdiff_t upto) {
    fetch(upto + 1);
    upto = std::min(upto, n - 1);
    std::uint32_t mask = 0;
    while (waited < upto) {
      ++waited;
      mask |= 1u << tag_of(waited);
    }
    if (mask != 0) ctx.dma.wait_tag_mask(mask);
  };

  const std::size_t nl = (hh + 1) / 2;
  for (std::ptrdiff_t f = 1; f < n + 2; f += 2) {
    ensure(f + 1);
    if (f < n) {
      ctx.dma.touch(slot(f + 1), cw * sizeof(Sample));
      ctx.dma.touch(slot(f), cw * sizeof(Sample));
      bk.predict53_row(ctx.simd, slot(f), slot(f - 1), slot(f + 1), cw);
    }
    if (f - 1 < n) {
      ctx.dma.touch(slot(f - 1), cw * sizeof(Sample));
      bk.update53_row(ctx.simd, slot(f - 1), slot(f - 2), slot(f), cw);
    }
    if (f - 2 >= 1 && f - 2 < n) {  // park finalized high row
      dma_put_row_tagged(ctx.dma, slot(f - 2),
                         aux.row(static_cast<std::size_t>((f - 2) / 2)) + x0,
                         cw, tag_of(f - 2));
    }
    if (f - 1 >= 0 && f - 1 < n) {  // emit finalized low row
      dma_put_row_tagged(
          ctx.dma, slot(f - 1),
          plane.row(static_cast<std::size_t>((f - 1) / 2)) + x0, cw,
          tag_of(f - 1));
    }
  }
  // Copy parked high rows to the bottom half: a compute-free fenced
  // get->put chain on two ring slots.  The barrier first makes sure the
  // aux rows being re-read have actually landed in main memory.
  ctx.dma.wait_all();
  Sample* cbuf[2] = {ring, ring + cw};
  for (std::size_t j = 0; nl + j < hh; ++j) {
    const unsigned t = static_cast<unsigned>(j & 1);
    dma_getf_row_tagged(ctx.dma, cbuf[t], aux.row(j) + x0, cw, t);
    dma_putf_row_tagged(ctx.dma, cbuf[t], plane.row(nl + j) + x0, cw, t);
  }
  ctx.dma.wait_all();
  ctx.ls.reset();
}

/// Naive multipass vertical 5/3 (ablation A): predict sweep, update sweep,
/// split sweep — each streams the whole group through the Local Store.
void spe_vertical53_multipass(cell::SpeContext& ctx,
                              const backend::KernelBackend& bk,
                              Span2d<Sample> plane, std::size_t x0,
                              std::size_t cw, std::size_t hh,
                              Span2d<Sample> aux) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(hh);
  if (n < 2) return;
  constexpr std::size_t K = 4;
  Sample* ring = ctx.ls.alloc<Sample>(K * cw);
  const auto slot = [&](std::ptrdiff_t i) {
    return ring + static_cast<std::size_t>(mirror(i, n)) % K * cw;
  };
  const auto tag_of = [&](std::ptrdiff_t r) {
    return static_cast<unsigned>(r) % static_cast<unsigned>(K);
  };
  // Tag-per-slot ring (see the merged kernel).  Row r keeps tag r%K across
  // both sweeps, so a sweep's fenced re-fetch of row r is ordered after the
  // previous sweep's put of the same row without an inter-pass barrier.
  const auto sweep53 = [&](std::ptrdiff_t parity, const auto& lift_row) {
    std::ptrdiff_t loaded = -1;
    std::ptrdiff_t waited = -1;
    const auto fetch = [&](std::ptrdiff_t upto) {
      upto = std::min(upto, n - 1);
      while (loaded < upto) {
        ++loaded;
        dma_getf_row_tagged(
            ctx.dma, ring + static_cast<std::size_t>(loaded) % K * cw,
            plane.row(static_cast<std::size_t>(loaded)) + x0, cw,
            tag_of(loaded));
      }
    };
    for (std::ptrdiff_t i = parity; i < n; i += 2) {
      fetch(i + 2);
      std::uint32_t mask = 0;
      while (waited < std::min(i + 1, n - 1)) {
        ++waited;
        mask |= 1u << tag_of(waited);
      }
      if (mask != 0) ctx.dma.wait_tag_mask(mask);
      ctx.dma.touch(slot(i + 1), cw * sizeof(Sample));
      ctx.dma.touch(slot(i), cw * sizeof(Sample));
      lift_row(i);
      dma_put_row_tagged(ctx.dma, slot(i),
                         plane.row(static_cast<std::size_t>(i)) + x0, cw,
                         tag_of(i));
    }
  };
  // Pass 1: predict (write odd rows).
  sweep53(1, [&](std::ptrdiff_t i) {
    bk.predict53_row(ctx.simd, slot(i), slot(i - 1), slot(i + 1), cw);
  });
  // Pass 2: update (write even rows).
  sweep53(0, [&](std::ptrdiff_t i) {
    bk.update53_row(ctx.simd, slot(i), slot(i - 1), slot(i + 1), cw);
  });
  // Pass 3: split — low rows compact in place, high rows via aux.  The
  // compaction writes row i/2 after row i/2 was read, so each get is
  // claimed before issuing the put that could otherwise overtake it on a
  // different tag; the puts themselves stay asynchronous.
  {
    ctx.dma.wait_all();
    Sample* buf[2] = {ring, ring + cw};
    const std::size_t nl = (hh + 1) / 2;
    for (std::size_t i = 0; i < hh; ++i) {
      const unsigned t = static_cast<unsigned>(i & 1);
      dma_getf_row_tagged(ctx.dma, buf[t], plane.row(i) + x0, cw, t);
      ctx.dma.wait_tag(t);
      if (i % 2 == 0) {
        dma_put_row_tagged(ctx.dma, buf[t], plane.row(i / 2) + x0, cw, t);
      } else {
        dma_put_row_tagged(ctx.dma, buf[t], aux.row(i / 2) + x0, cw, t);
      }
    }
    ctx.dma.wait_all();
    for (std::size_t j = 0; nl + j < hh; ++j) {
      const unsigned t = static_cast<unsigned>(j & 1);
      dma_getf_row_tagged(ctx.dma, buf[t], aux.row(j) + x0, cw, t);
      dma_putf_row_tagged(ctx.dma, buf[t], plane.row(nl + j) + x0, cw, t);
    }
    ctx.dma.wait_all();
  }
  ctx.ls.reset();
}

/// Merged vertical 9/7: four lifting stages + scaling + emission fused into
/// one streaming sweep (Kutil-style single loop, K-row Local Store ring).
void spe_vertical97_merged(cell::SpeContext& ctx,
                           const backend::KernelBackend& bk,
                           Span2d<float> plane, std::size_t x0,
                           std::size_t cw, std::size_t hh,
                           Span2d<float> aux) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(hh);
  if (n < 2) return;
  constexpr std::size_t K = 10;
  float* ring = ctx.ls.alloc<float>(K * cw);
  const auto slot = [&](std::ptrdiff_t i) {
    return ring + static_cast<std::size_t>(mirror(i, n)) % K * cw;
  };
  const auto tag_of = [&](std::ptrdiff_t r) {
    return static_cast<unsigned>(r) % static_cast<unsigned>(K);
  };
  // Tag-per-slot ring with fenced gets and a one-row prefetch, as in the
  // 5/3 merged kernel — the deeper K absorbs the four-stage lifting
  // pipeline's longer row lifetime.
  std::ptrdiff_t loaded = -1;
  std::ptrdiff_t waited = -1;
  const auto fetch = [&](std::ptrdiff_t upto) {
    upto = std::min(upto, n - 1);
    while (loaded < upto) {
      ++loaded;
      dma_getf_row_tagged(ctx.dma,
                          ring + static_cast<std::size_t>(loaded) % K * cw,
                          plane.row(static_cast<std::size_t>(loaded)) + x0,
                          cw, tag_of(loaded));
    }
  };
  const auto ensure = [&](std::ptrdiff_t upto) {
    fetch(upto + 1);
    upto = std::min(upto, n - 1);
    std::uint32_t mask = 0;
    while (waited < upto) {
      ++waited;
      mask |= 1u << tag_of(waited);
    }
    if (mask != 0) ctx.dma.wait_tag_mask(mask);
  };
  const auto lift = [&](std::ptrdiff_t i, float c, std::ptrdiff_t parity) {
    if (i < parity || i >= n || ((i ^ parity) & 1)) return;
    ctx.dma.touch(slot(i + 1), cw * sizeof(float));
    ctx.dma.touch(slot(i), cw * sizeof(float));
    bk.lift97_row(ctx.simd, slot(i), slot(i - 1), slot(i + 1), c, cw);
  };
  const auto scale = [&](std::ptrdiff_t i) {
    if (i < 0 || i >= n) return;
    ctx.dma.touch(slot(i), cw * sizeof(float));
    bk.scale_row(ctx.simd, slot(i),
                   (i & 1) ? jp2k::dwt97::kK : 1.0f / jp2k::dwt97::kK, cw);
  };

  const std::size_t nl = (hh + 1) / 2;
  for (std::ptrdiff_t f = 1; f < n + 6; f += 2) {
    ensure(f + 1);
    lift(f, jp2k::dwt97::kAlpha, 1);
    lift(f - 1, jp2k::dwt97::kBeta, 0);
    lift(f - 2, jp2k::dwt97::kGamma, 1);
    lift(f - 3, jp2k::dwt97::kDelta, 0);
    scale(f - 4);
    if (f - 4 >= 1 && f - 4 < n && ((f - 4) & 1)) {
      dma_put_row_tagged(ctx.dma, slot(f - 4),
                         aux.row(static_cast<std::size_t>((f - 4) / 2)) + x0,
                         cw, tag_of(f - 4));
    }
    scale(f - 5);
    if (f - 5 >= 0 && f - 5 < n && !((f - 5) & 1)) {
      dma_put_row_tagged(
          ctx.dma, slot(f - 5),
          plane.row(static_cast<std::size_t>((f - 5) / 2)) + x0, cw,
          tag_of(f - 5));
    }
  }
  // Compute-free fenced get->put chain for the parked high rows (see the
  // 5/3 merged kernel).
  ctx.dma.wait_all();
  float* cbuf[2] = {ring, ring + cw};
  for (std::size_t j = 0; nl + j < hh; ++j) {
    const unsigned t = static_cast<unsigned>(j & 1);
    dma_getf_row_tagged(ctx.dma, cbuf[t], aux.row(j) + x0, cw, t);
    dma_putf_row_tagged(ctx.dma, cbuf[t], plane.row(nl + j) + x0, cw, t);
  }
  ctx.dma.wait_all();
  ctx.ls.reset();
}

/// Naive multipass vertical 9/7 (six sweeps).
void spe_vertical97_multipass(cell::SpeContext& ctx,
                              const backend::KernelBackend& bk,
                              Span2d<float> plane, std::size_t x0,
                              std::size_t cw, std::size_t hh,
                              Span2d<float> aux) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(hh);
  if (n < 2) return;
  constexpr std::size_t K = 4;
  float* ring = ctx.ls.alloc<float>(K * cw);
  const auto slot = [&](std::ptrdiff_t i) {
    return ring + static_cast<std::size_t>(mirror(i, n)) % K * cw;
  };
  const auto tag_of = [&](std::ptrdiff_t r) {
    return static_cast<unsigned>(r) % static_cast<unsigned>(K);
  };
  // Tag-per-slot ring; row r keeps tag r%K across sweeps, so each sweep's
  // fenced re-fetch of a row is ordered after the previous sweep's put of
  // that row without inter-sweep barriers.
  const auto sweep = [&](float c, std::ptrdiff_t parity) {
    std::ptrdiff_t loaded = -1;
    std::ptrdiff_t waited = -1;
    const auto fetch = [&](std::ptrdiff_t upto) {
      upto = std::min(upto, n - 1);
      while (loaded < upto) {
        ++loaded;
        dma_getf_row_tagged(
            ctx.dma, ring + static_cast<std::size_t>(loaded) % K * cw,
            plane.row(static_cast<std::size_t>(loaded)) + x0, cw,
            tag_of(loaded));
      }
    };
    for (std::ptrdiff_t i = parity; i < n; i += 2) {
      fetch(i + 2);
      std::uint32_t mask = 0;
      while (waited < std::min(i + 1, n - 1)) {
        ++waited;
        mask |= 1u << tag_of(waited);
      }
      if (mask != 0) ctx.dma.wait_tag_mask(mask);
      ctx.dma.touch(slot(i + 1), cw * sizeof(float));
      ctx.dma.touch(slot(i), cw * sizeof(float));
      bk.lift97_row(ctx.simd, slot(i), slot(i - 1), slot(i + 1), c, cw);
      dma_put_row_tagged(ctx.dma, slot(i),
                         plane.row(static_cast<std::size_t>(i)) + x0, cw,
                         tag_of(i));
    }
  };
  sweep(jp2k::dwt97::kAlpha, 1);
  sweep(jp2k::dwt97::kBeta, 0);
  sweep(jp2k::dwt97::kGamma, 1);
  sweep(jp2k::dwt97::kDelta, 0);
  // Scaling sweep: ping/pong on tags 0/1.  The sweeps above put on tag
  // r%K, which no longer matches this sweep's tag map, so a barrier keeps
  // the re-reads ordered after those writes.
  {
    ctx.dma.wait_all();
    float* buf[2] = {ring, ring + cw};
    dma_getf_row_tagged(ctx.dma, buf[0], plane.row(0) + x0, cw, 0);
    for (std::size_t i = 0; i < hh; ++i) {
      const unsigned cur = static_cast<unsigned>(i & 1);
      const unsigned nxt = cur ^ 1u;
      if (i + 1 < hh) {
        dma_getf_row_tagged(ctx.dma, buf[nxt], plane.row(i + 1) + x0, cw,
                            nxt);
      }
      ctx.dma.wait_tag(cur);
      ctx.dma.touch(buf[cur], cw * sizeof(float));
      bk.scale_row(ctx.simd, buf[cur],
                     (i & 1) ? jp2k::dwt97::kK : 1.0f / jp2k::dwt97::kK, cw);
      dma_put_row_tagged(ctx.dma, buf[cur], plane.row(i) + x0, cw, cur);
    }
    ctx.dma.wait_all();
  }
  // Split sweep: in-place compaction (see the 5/3 multipass kernel's
  // pass 3 for why each get is claimed before its put is issued).
  {
    float* buf[2] = {ring, ring + cw};
    const std::size_t nl = (hh + 1) / 2;
    for (std::size_t i = 0; i < hh; ++i) {
      const unsigned t = static_cast<unsigned>(i & 1);
      dma_getf_row_tagged(ctx.dma, buf[t], plane.row(i) + x0, cw, t);
      ctx.dma.wait_tag(t);
      if (i % 2 == 0) {
        dma_put_row_tagged(ctx.dma, buf[t], plane.row(i / 2) + x0, cw, t);
      } else {
        dma_put_row_tagged(ctx.dma, buf[t], aux.row(i / 2) + x0, cw, t);
      }
    }
    ctx.dma.wait_all();
    for (std::size_t j = 0; nl + j < hh; ++j) {
      const unsigned t = static_cast<unsigned>(j & 1);
      dma_getf_row_tagged(ctx.dma, buf[t], aux.row(j) + x0, cw, t);
      dma_putf_row_tagged(ctx.dma, buf[t], plane.row(nl + j) + x0, cw, t);
    }
    ctx.dma.wait_all();
  }
  ctx.ls.reset();
}

/// Merged vertical 9/7 in Q13 fixed point — same schedule as the float
/// kernel, emulated-multiply lifting steps.
void spe_vertical97_fixed_merged(cell::SpeContext& ctx,
                                 const backend::KernelBackend& bk,
                                 Span2d<Sample> plane, std::size_t x0,
                                 std::size_t cw, std::size_t hh,
                                 Span2d<Sample> aux) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(hh);
  if (n < 2) return;
  constexpr std::size_t K = 10;
  Sample* ring = ctx.ls.alloc<Sample>(K * cw);
  const auto slot = [&](std::ptrdiff_t i) {
    return ring + static_cast<std::size_t>(mirror(i, n)) % K * cw;
  };
  const auto tag_of = [&](std::ptrdiff_t r) {
    return static_cast<unsigned>(r) % static_cast<unsigned>(K);
  };
  // Tag-per-slot ring with fenced gets and a one-row prefetch (see the
  // float merged kernel).
  std::ptrdiff_t loaded = -1;
  std::ptrdiff_t waited = -1;
  const auto fetch = [&](std::ptrdiff_t upto) {
    upto = std::min(upto, n - 1);
    while (loaded < upto) {
      ++loaded;
      dma_getf_row_tagged(ctx.dma,
                          ring + static_cast<std::size_t>(loaded) % K * cw,
                          plane.row(static_cast<std::size_t>(loaded)) + x0,
                          cw, tag_of(loaded));
    }
  };
  const auto ensure = [&](std::ptrdiff_t upto) {
    fetch(upto + 1);
    upto = std::min(upto, n - 1);
    std::uint32_t mask = 0;
    while (waited < upto) {
      ++waited;
      mask |= 1u << tag_of(waited);
    }
    if (mask != 0) ctx.dma.wait_tag_mask(mask);
  };
  const auto lift = [&](std::ptrdiff_t i, Sample c_q13,
                        std::ptrdiff_t parity) {
    if (i < parity || i >= n || ((i ^ parity) & 1)) return;
    ctx.dma.touch(slot(i + 1), cw * sizeof(Sample));
    ctx.dma.touch(slot(i), cw * sizeof(Sample));
    bk.lift97_fixed_row(ctx.simd, slot(i), slot(i - 1), slot(i + 1), c_q13,
                          cw);
  };
  const auto scale = [&](std::ptrdiff_t i) {
    if (i < 0 || i >= n) return;
    ctx.dma.touch(slot(i), cw * sizeof(Sample));
    bk.scale_fixed_row(
        ctx.simd, slot(i),
        (i & 1) ? jp2k::dwt97::kFxK : jp2k::dwt97::kFxInvK, cw);
  };

  const std::size_t nl = (hh + 1) / 2;
  for (std::ptrdiff_t f = 1; f < n + 6; f += 2) {
    ensure(f + 1);
    lift(f, jp2k::dwt97::kFxAlpha, 1);
    lift(f - 1, jp2k::dwt97::kFxBeta, 0);
    lift(f - 2, jp2k::dwt97::kFxGamma, 1);
    lift(f - 3, jp2k::dwt97::kFxDelta, 0);
    scale(f - 4);
    if (f - 4 >= 1 && f - 4 < n && ((f - 4) & 1)) {
      dma_put_row_tagged(ctx.dma, slot(f - 4),
                         aux.row(static_cast<std::size_t>((f - 4) / 2)) + x0,
                         cw, tag_of(f - 4));
    }
    scale(f - 5);
    if (f - 5 >= 0 && f - 5 < n && !((f - 5) & 1)) {
      dma_put_row_tagged(
          ctx.dma, slot(f - 5),
          plane.row(static_cast<std::size_t>((f - 5) / 2)) + x0, cw,
          tag_of(f - 5));
    }
  }
  // Compute-free fenced get->put chain for the parked high rows.
  ctx.dma.wait_all();
  Sample* cbuf[2] = {ring, ring + cw};
  for (std::size_t j = 0; nl + j < hh; ++j) {
    const unsigned t = static_cast<unsigned>(j & 1);
    dma_getf_row_tagged(ctx.dma, cbuf[t], aux.row(j) + x0, cw, t);
    dma_putf_row_tagged(ctx.dma, cbuf[t], plane.row(nl + j) + x0, cw, t);
  }
  ctx.dma.wait_all();
  ctx.ls.reset();
}

// ===========================================================================
// Horizontal filtering
// ===========================================================================

}  // namespace

cell::StageTiming stage_dwt53(cell::Machine& m, Span2d<Sample> plane,
                              int levels, const DwtOptions& opt,
                              const backend::KernelBackend& bk) {
  cell::StageTiming total;
  total.name = "dwt53";
  std::size_t ww = plane.width();
  std::size_t hh = plane.height();
  std::vector<Sample> ppe_scratch;

  for (int l = 0; l < levels && (ww > 1 || hh > 1); ++l) {
    // Aux buffer shared by SPE groups and the PPE remainder.
    const auto plan =
        opt.colgroup_elems == 0
            ? decomp::plan_chunks(ww, sizeof(Sample),
                                  static_cast<std::size_t>(m.num_spes()))
            : decomp::plan_chunks_fixed_width(ww, sizeof(Sample),
                                              opt.colgroup_elems);
    AlignedBuffer<Sample> aux_store(plane.stride() * (hh / 2 + 1));
    Span2d<Sample> aux(aux_store.data(), ww, hh / 2 + 1, plane.stride());

    auto vwork = [&](int i, cell::SpeContext& ctx) {
      for (std::size_t g = static_cast<std::size_t>(i);
           g < plan.spe_chunks.size();
           g += static_cast<std::size_t>(std::max(1, m.num_spes()))) {
        const auto& ch = plan.spe_chunks[g];
        if (opt.merged_vertical) {
          spe_vertical53_merged(ctx, bk, plane, ch.x0, ch.width, hh, aux);
        } else {
          spe_vertical53_multipass(ctx, bk, plane, ch.x0, ch.width, hh, aux);
        }
      }
    };
    auto vppe = [&](cell::OpCounters& c) {
      const auto& rem = plan.remainder;
      if (rem.width == 0) return;
      auto region = plane.subview(rem.x0, 0, rem.width, hh);
      std::vector<Sample> aux_vec;
      jp2k::dwt_merged::vertical_analyze_53(region, aux_vec);
      c.s_int += static_cast<std::uint64_t>(rem.width) * hh *
                 kPpeLiftOpsPerSample * 2;
    };
    total += m.run_data_parallel("dwt53-vertical", vwork, vppe);

    // Horizontal.
    const auto rows = decomp::split_rows(
        hh, static_cast<std::size_t>(std::max(1, m.num_spes())));
    if (m.num_spes() > 0) {
      auto hwork = [&](int i, cell::SpeContext& ctx) {
        if (static_cast<std::size_t>(i) >= rows.size()) return;
        const auto [start, count] = rows[static_cast<std::size_t>(i)];
        const std::size_t pad = round_up(ww, 32);
        // Whole-cache-line transfers; lin[ww..tw) is fetched, left
        // untouched, and written back, so neighbouring coefficients in the
        // stride round-trip bit-exactly.
        const std::size_t tw = padded_row_elems(ww, plane.stride());
        // Ping/pong: lin is transformed in place, so the prefetch of row
        // y+1 into the other parity *must* be fenced — that buffer's
        // write-back from row y-1 may still be in flight on the same tag.
        Sample* lin[2] = {ctx.ls.alloc<Sample>(pad),
                          ctx.ls.alloc<Sample>(pad)};
        Sample* even = ctx.ls.alloc<Sample>(pad / 2 + 4);
        Sample* odd = ctx.ls.alloc<Sample>(pad / 2 + 4);
        const std::size_t nl = (ww + 1) / 2;
        dma_getf_row_tagged(ctx.dma, lin[0], plane.row(start), tw, 0);
        for (std::size_t y = start; y < start + count; ++y) {
          const unsigned cur = static_cast<unsigned>((y - start) & 1);
          const unsigned nxt = cur ^ 1u;
          if (y + 1 < start + count) {
            dma_getf_row_tagged(ctx.dma, lin[nxt], plane.row(y + 1), tw,
                                nxt);
          }
          ctx.dma.wait_tag(cur);
          ctx.dma.touch(lin[cur], tw * sizeof(Sample));
          bk.dwt53_h_row(ctx.simd, lin[cur], even, odd, ww);
          // Reassemble L|H contiguously so the row goes back in one
          // aligned DMA (writing the H half alone would start at an
          // arbitrary offset and violate the MFC alignment rules).
          bk.ls_copy(ctx.simd, lin[cur], even, nl * sizeof(Sample));
          if (ww > nl) {
            bk.ls_copy(ctx.simd, lin[cur] + nl, odd,
                    (ww - nl) * sizeof(Sample));
          }
          dma_put_row_tagged(ctx.dma, lin[cur], plane.row(y), tw, cur);
        }
        ctx.dma.wait_all();
        ctx.ls.reset();
      };
      total += m.run_data_parallel("dwt53-horizontal", hwork, nullptr);
    } else {
      auto hppe = [&](cell::OpCounters& c) {
        ppe_scratch.resize(ww);
        for (std::size_t y = 0; y < hh; ++y) {
          jp2k::dwt53::analyze(plane.row(y), ww, 1, ppe_scratch.data());
        }
        c.s_int += static_cast<std::uint64_t>(ww) * hh *
                   kPpeLiftOpsPerSample * 2;
      };
      total += m.run_data_parallel(
          "dwt53-horizontal", [](int, cell::SpeContext&) {}, hppe);
    }

    ww = (ww + 1) / 2;
    hh = (hh + 1) / 2;
  }
  return total;
}

cell::StageTiming stage_dwt97(cell::Machine& m, Span2d<float> plane,
                              int levels, const DwtOptions& opt,
                              const backend::KernelBackend& bk) {
  cell::StageTiming total;
  total.name = "dwt97";
  std::size_t ww = plane.width();
  std::size_t hh = plane.height();
  std::vector<float> ppe_scratch;

  for (int l = 0; l < levels && (ww > 1 || hh > 1); ++l) {
    const auto plan =
        opt.colgroup_elems == 0
            ? decomp::plan_chunks(ww, sizeof(float),
                                  static_cast<std::size_t>(m.num_spes()))
            : decomp::plan_chunks_fixed_width(ww, sizeof(float),
                                              opt.colgroup_elems);
    AlignedBuffer<float> aux_store(plane.stride() * (hh / 2 + 1));
    Span2d<float> aux(aux_store.data(), ww, hh / 2 + 1, plane.stride());

    auto vwork = [&](int i, cell::SpeContext& ctx) {
      for (std::size_t g = static_cast<std::size_t>(i);
           g < plan.spe_chunks.size();
           g += static_cast<std::size_t>(std::max(1, m.num_spes()))) {
        const auto& ch = plan.spe_chunks[g];
        if (opt.merged_vertical) {
          spe_vertical97_merged(ctx, bk, plane, ch.x0, ch.width, hh, aux);
        } else {
          spe_vertical97_multipass(ctx, bk, plane, ch.x0, ch.width, hh, aux);
        }
      }
    };
    auto vppe = [&](cell::OpCounters& c) {
      const auto& rem = plan.remainder;
      if (rem.width == 0) return;
      auto region = plane.subview(rem.x0, 0, rem.width, hh);
      std::vector<float> aux_vec;
      jp2k::dwt_merged::vertical_analyze_97(region, aux_vec);
      c.s_float += static_cast<std::uint64_t>(rem.width) * hh *
                   kPpeLiftOpsPerSample * 3;
    };
    total += m.run_data_parallel("dwt97-vertical", vwork, vppe);

    const auto rows = decomp::split_rows(
        hh, static_cast<std::size_t>(std::max(1, m.num_spes())));
    if (m.num_spes() > 0) {
      auto hwork = [&](int i, cell::SpeContext& ctx) {
        if (static_cast<std::size_t>(i) >= rows.size()) return;
        const auto [start, count] = rows[static_cast<std::size_t>(i)];
        const std::size_t pad = round_up(ww, 32);
        // Whole-cache-line transfers, fenced ping/pong (see the 5/3
        // kernel above).
        const std::size_t tw = padded_row_elems(ww, plane.stride());
        float* lin[2] = {ctx.ls.alloc<float>(pad), ctx.ls.alloc<float>(pad)};
        float* even = ctx.ls.alloc<float>(pad / 2 + 4);
        float* odd = ctx.ls.alloc<float>(pad / 2 + 4);
        const std::size_t nl = (ww + 1) / 2;
        dma_getf_row_tagged(ctx.dma, lin[0], plane.row(start), tw, 0);
        for (std::size_t y = start; y < start + count; ++y) {
          const unsigned cur = static_cast<unsigned>((y - start) & 1);
          const unsigned nxt = cur ^ 1u;
          if (y + 1 < start + count) {
            dma_getf_row_tagged(ctx.dma, lin[nxt], plane.row(y + 1), tw,
                                nxt);
          }
          ctx.dma.wait_tag(cur);
          ctx.dma.touch(lin[cur], tw * sizeof(float));
          bk.dwt97_h_row(ctx.simd, lin[cur], even, odd, ww);
          bk.ls_copy(ctx.simd, lin[cur], even, nl * sizeof(float));
          if (ww > nl) {
            bk.ls_copy(ctx.simd, lin[cur] + nl, odd, (ww - nl) * sizeof(float));
          }
          dma_put_row_tagged(ctx.dma, lin[cur], plane.row(y), tw, cur);
        }
        ctx.dma.wait_all();
        ctx.ls.reset();
      };
      total += m.run_data_parallel("dwt97-horizontal", hwork, nullptr);
    } else {
      auto hppe = [&](cell::OpCounters& c) {
        ppe_scratch.resize(ww);
        for (std::size_t y = 0; y < hh; ++y) {
          jp2k::dwt97::analyze(plane.row(y), ww, 1, ppe_scratch.data());
        }
        c.s_float += static_cast<std::uint64_t>(ww) * hh *
                     kPpeLiftOpsPerSample * 3;
      };
      total += m.run_data_parallel(
          "dwt97-horizontal", [](int, cell::SpeContext&) {}, hppe);
    }

    ww = (ww + 1) / 2;
    hh = (hh + 1) / 2;
  }
  return total;
}

cell::StageTiming stage_dwt97_fixed(cell::Machine& m, Span2d<Sample> plane,
                                    int levels, const DwtOptions& opt,
                                    const backend::KernelBackend& bk) {
  cell::StageTiming total;
  total.name = "dwt97fx";
  std::size_t ww = plane.width();
  std::size_t hh = plane.height();
  std::vector<Sample> ppe_scratch;

  for (int l = 0; l < levels && (ww > 1 || hh > 1); ++l) {
    const auto plan =
        opt.colgroup_elems == 0
            ? decomp::plan_chunks(ww, sizeof(Sample),
                                  static_cast<std::size_t>(m.num_spes()))
            : decomp::plan_chunks_fixed_width(ww, sizeof(Sample),
                                              opt.colgroup_elems);
    AlignedBuffer<Sample> aux_store(plane.stride() * (hh / 2 + 1));
    Span2d<Sample> aux(aux_store.data(), ww, hh / 2 + 1, plane.stride());

    auto vwork = [&](int i, cell::SpeContext& ctx) {
      for (std::size_t g = static_cast<std::size_t>(i);
           g < plan.spe_chunks.size();
           g += static_cast<std::size_t>(std::max(1, m.num_spes()))) {
        const auto& ch = plan.spe_chunks[g];
        spe_vertical97_fixed_merged(ctx, bk, plane, ch.x0, ch.width, hh, aux);
      }
    };
    auto vppe = [&](cell::OpCounters& c) {
      const auto& rem = plan.remainder;
      if (rem.width == 0) return;
      // PPE remainder: plain per-column fixed analysis (lifting sweeps
      // only; the merged schedule is an SPE-side DMA optimization).
      ppe_scratch.resize(hh);
      for (std::size_t x = 0; x < rem.width; ++x) {
        jp2k::dwt97::analyze_fixed(plane.data() + rem.x0 + x, hh,
                                   plane.stride(), ppe_scratch.data());
      }
      c.s_int += static_cast<std::uint64_t>(rem.width) * hh *
                 kPpeLiftOpsPerSample * 4;
    };
    total += m.run_data_parallel("dwt97fx-vertical", vwork, vppe);

    const auto rows = decomp::split_rows(
        hh, static_cast<std::size_t>(std::max(1, m.num_spes())));
    if (m.num_spes() > 0) {
      auto hwork = [&](int i, cell::SpeContext& ctx) {
        if (static_cast<std::size_t>(i) >= rows.size()) return;
        const auto [start, count] = rows[static_cast<std::size_t>(i)];
        const std::size_t pad = round_up(ww, 32);
        // Whole-cache-line transfers, fenced ping/pong (see the 5/3
        // kernel above).
        const std::size_t tw = padded_row_elems(ww, plane.stride());
        Sample* lin[2] = {ctx.ls.alloc<Sample>(pad),
                          ctx.ls.alloc<Sample>(pad)};
        Sample* even = ctx.ls.alloc<Sample>(pad / 2 + 4);
        Sample* odd = ctx.ls.alloc<Sample>(pad / 2 + 4);
        const std::size_t nl = (ww + 1) / 2;
        dma_getf_row_tagged(ctx.dma, lin[0], plane.row(start), tw, 0);
        for (std::size_t y = start; y < start + count; ++y) {
          const unsigned cur = static_cast<unsigned>((y - start) & 1);
          const unsigned nxt = cur ^ 1u;
          if (y + 1 < start + count) {
            dma_getf_row_tagged(ctx.dma, lin[nxt], plane.row(y + 1), tw,
                                nxt);
          }
          ctx.dma.wait_tag(cur);
          ctx.dma.touch(lin[cur], tw * sizeof(Sample));
          bk.dwt97_fixed_h_row(ctx.simd, lin[cur], even, odd, ww);
          bk.ls_copy(ctx.simd, lin[cur], even, nl * sizeof(Sample));
          if (ww > nl) {
            bk.ls_copy(ctx.simd, lin[cur] + nl, odd,
                    (ww - nl) * sizeof(Sample));
          }
          dma_put_row_tagged(ctx.dma, lin[cur], plane.row(y), tw, cur);
        }
        ctx.dma.wait_all();
        ctx.ls.reset();
      };
      total += m.run_data_parallel("dwt97fx-horizontal", hwork, nullptr);
    } else {
      auto hppe = [&](cell::OpCounters& c) {
        ppe_scratch.resize(ww);
        for (std::size_t y = 0; y < hh; ++y) {
          jp2k::dwt97::analyze_fixed(plane.row(y), ww, 1,
                                     ppe_scratch.data());
        }
        c.s_int += static_cast<std::uint64_t>(ww) * hh *
                   kPpeLiftOpsPerSample * 4;
      };
      total += m.run_data_parallel(
          "dwt97fx-horizontal", [](int, cell::SpeContext&) {}, hppe);
    }

    ww = (ww + 1) / 2;
    hh = (hh + 1) / 2;
  }
  return total;
}

}  // namespace cj2k::cellenc
