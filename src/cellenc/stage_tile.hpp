// Tile-parallel scheduling for multi-tile encodes (DESIGN.md §7): the SPE
// pool is carved into groups of at least a full paper-scale pipeline
// (decomp::plan_tile_groups), independent tiles run their data-parallel
// fronts on the groups in waves, and the serial PPE slots (per-stage
// remainders, per-tile Tier-2) are replayed through a shared-resource
// pipeline schedule (decomp::schedule_pipeline) so a later tile's SPE work
// hides an earlier tile's PPE time.
//
// The codestream is assembled in tile-index order whatever the processing
// order, and the lossy path feeds every tile's hull segments into one
// k-way merge, so a single global λ holds over the whole image — output is
// byte-identical to jp2k::encode with the same tile grid.
#pragma once

#include "cellenc/pipeline.hpp"
#include "jp2k/tile_grid.hpp"

namespace cj2k::cellenc {

/// Runs the full multi-tile pipeline on the simulated machine.  `machine`
/// is the whole-pool machine; group machines are derived from its config.
/// Called by CellEncoder::encode when the grid has more than one tile.
PipelineResult encode_tiled(cell::Machine& machine, const Image& img,
                            const jp2k::CodingParams& params,
                            const PipelineOptions& opt,
                            const jp2k::TileGrid& grid);

}  // namespace cj2k::cellenc
