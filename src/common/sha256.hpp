// Minimal SHA-256 (FIPS 180-4), used by the golden-vector regression tests
// to pin reference codestreams as short digests instead of checked-in
// binaries.  Not a hardened crypto implementation — a content fingerprint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cj2k::common {

/// SHA-256 digest of `data`, as 64 lowercase hex characters.
std::string sha256_hex(const std::uint8_t* data, std::size_t size);

inline std::string sha256_hex(const std::vector<std::uint8_t>& data) {
  return sha256_hex(data.data(), data.size());
}

}  // namespace cj2k::common
