#include "common/rng.hpp"

#include <cmath>

namespace cj2k {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's multiply-shift rejection method.
  if (bound <= 1) return 0;
  while (true) {
    const std::uint64_t x = next_u64();
    const unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    const std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo >= bound || lo >= (-bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = next_double();
  double u2 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

}  // namespace cj2k
