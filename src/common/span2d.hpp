// Non-owning 2-D view over contiguous row-major storage with an explicit
// stride.  The stride is in *elements*, not bytes, and may exceed the width —
// that is exactly how the decomposition scheme's row padding is represented.
#pragma once

#include <cstddef>

#include "common/error.hpp"

namespace cj2k {

template <typename T>
class Span2d {
 public:
  Span2d() = default;

  Span2d(T* data, std::size_t width, std::size_t height, std::size_t stride)
      : data_(data), width_(width), height_(height), stride_(stride) {
    CJ2K_DCHECK(stride >= width);
  }

  /// Dense view (stride == width).
  Span2d(T* data, std::size_t width, std::size_t height)
      : Span2d(data, width, height, width) {}

  T* data() const { return data_; }
  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  std::size_t stride() const { return stride_; }
  bool empty() const { return width_ == 0 || height_ == 0; }

  T* row(std::size_t y) const {
    CJ2K_DCHECK(y < height_);
    return data_ + y * stride_;
  }

  T& at(std::size_t y, std::size_t x) const {
    CJ2K_DCHECK(y < height_ && x < width_);
    return data_[y * stride_ + x];
  }

  T& operator()(std::size_t y, std::size_t x) const { return at(y, x); }

  /// Rectangular sub-view; [x0, x0+w) × [y0, y0+h) must be in range.
  Span2d subview(std::size_t x0, std::size_t y0, std::size_t w,
                 std::size_t h) const {
    CJ2K_DCHECK(x0 + w <= width_ && y0 + h <= height_);
    return Span2d(data_ + y0 * stride_ + x0, w, h, stride_);
  }

  /// Implicit conversion to a const view.
  operator Span2d<const T>() const {
    return Span2d<const T>(data_, width_, height_, stride_);
  }

 private:
  T* data_ = nullptr;
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::size_t stride_ = 0;
};

}  // namespace cj2k
