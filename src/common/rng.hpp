// Deterministic PRNG (xoshiro256**) for synthetic workload generation and
// property tests.  We avoid std::mt19937 so streams are reproducible across
// standard library implementations.
#pragma once

#include <cstdint>

namespace cj2k {

/// xoshiro256** by Blackman & Vigna; seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) for bound >= 1.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Standard normal variate (Box–Muller, one value per call).
  double next_gaussian();

 private:
  std::uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace cj2k
