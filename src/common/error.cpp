#include "common/error.hpp"

#include <sstream>

namespace cj2k::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "CJ2K_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace cj2k::detail
