// Error handling primitives used across the library.
//
// We use exceptions for unrecoverable contract violations (bad codestream,
// misaligned DMA, invalid parameters).  Hot paths use CJ2K_DCHECK, which
// compiles out in release builds.
#pragma once

#include <stdexcept>
#include <string>

namespace cj2k {

/// Base class for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid user-supplied parameter (image geometry, coding options, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Malformed or truncated JPEG2000 codestream.
class CodestreamError : public Error {
 public:
  explicit CodestreamError(const std::string& what) : Error(what) {}
};

/// Violation of a Cell/B.E. hardware rule (DMA alignment/size, Local Store
/// overflow).  The simulator throws this where real hardware would raise a
/// bus error or silently corrupt data.
class CellHardwareError : public Error {
 public:
  explicit CellHardwareError(const std::string& what) : Error(what) {}
};

/// Strict-mode invariant-audit failure (cellcheck tier 2): the run broke a
/// Cell performance invariant — an inefficient DMA transfer or a Local
/// Store allocation past the configured budget (cell/audit.hpp).
class AuditError : public Error {
 public:
  explicit AuditError(const std::string& what) : Error(what) {}
};

/// I/O failure (file missing, short read, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace cj2k

/// Always-on invariant check; throws cj2k::Error on failure.
#define CJ2K_CHECK(expr)                                                  \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::cj2k::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
    }                                                                     \
  } while (0)

#define CJ2K_CHECK_MSG(expr, msg)                                           \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::cj2k::detail::throw_check_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (0)

/// Debug-only check for hot loops.
#ifndef NDEBUG
#define CJ2K_DCHECK(expr) CJ2K_CHECK(expr)
#else
#define CJ2K_DCHECK(expr) ((void)0)
#endif
