// Heap buffer with guaranteed alignment (default: the Cell cache line).
// Plane storage and the Cell pipeline's intermediate buffers use this so
// that row starts are genuinely 128-byte aligned — the property the
// decomposition scheme's DMA efficiency depends on.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

#include "common/align.hpp"

namespace cj2k {

template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count,
                         std::size_t align = kCacheLineBytes)
      : size_(count), align_(align) {
    if (count > 0) {
      data_ = static_cast<T*>(
          ::operator new(count * sizeof(T), std::align_val_t{align}));
      for (std::size_t i = 0; i < count; ++i) new (data_ + i) T{};
    }
  }

  AlignedBuffer(AlignedBuffer&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)),
        align_(o.align_) {}

  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept {
    if (this != &o) {
      destroy();
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
      align_ = o.align_;
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { destroy(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  void destroy() {
    if (data_) {
      for (std::size_t i = size_; i > 0; --i) data_[i - 1].~T();
      ::operator delete(data_, std::align_val_t{align_});
      data_ = nullptr;
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t align_ = kCacheLineBytes;
};

}  // namespace cj2k
