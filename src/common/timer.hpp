// Wall-clock timing for benchmark harnesses.
#pragma once

#include <chrono>

namespace cj2k {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the stopwatch to zero.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const;

  /// Milliseconds elapsed since construction or the last reset().
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cj2k
