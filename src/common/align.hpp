// Alignment arithmetic used by the data decomposition scheme and the DMA
// model.  The Cell/B.E. cache line (and PPE L2 line, and the granularity at
// which the MIC arbitrates memory requests) is 128 bytes; SIMD loads/stores
// require 16-byte (quad-word) alignment.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cj2k {

/// Cell/B.E. cache line size in bytes (PPE L2 / memory interface granule).
inline constexpr std::size_t kCacheLineBytes = 128;

/// SIMD quad-word size in bytes (SPE register width).
inline constexpr std::size_t kQuadWordBytes = 16;

/// Rounds `n` up to the next multiple of `align` (align must be a power of 2).
constexpr std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

/// Rounds `n` down to a multiple of `align` (align must be a power of 2).
constexpr std::size_t round_down(std::size_t n, std::size_t align) {
  return n & ~(align - 1);
}

/// True iff `n` is a multiple of `align` (align must be a power of 2).
constexpr bool is_multiple_of(std::size_t n, std::size_t align) {
  return (n & (align - 1)) == 0;
}

/// True iff the pointer value is `align`-byte aligned.
inline bool is_aligned(const void* p, std::size_t align) {
  return is_multiple_of(reinterpret_cast<std::uintptr_t>(p), align);
}

/// Ceiling division for non-negative integers.
constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

}  // namespace cj2k
