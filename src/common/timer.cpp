#include "common/timer.hpp"

namespace cj2k {

double Timer::seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

}  // namespace cj2k
