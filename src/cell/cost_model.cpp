#include "cell/cost_model.hpp"

#include <algorithm>

namespace cj2k::cell {

// Rationale for the defaults in CostParams (see also DESIGN.md):
//
//  * spe_mul_i_emul = 4: Table 1 gives mpyh 7 / mpyu 7 / a 2 cycle latency;
//    a 32-bit multiply needs mpyh(a,b) + mpyh(b,a) + mpyu(a,b) + two adds.
//    In a pipelined loop the *issue* cost is ~4-5 slots vs 1 for fm — this
//    is exactly the fixed-vs-float argument of §4.
//  * spe_branch = 10: no dynamic prediction; a mispredicted branch costs
//    ~18 cycles and compiler hints halve the miss rate in practice.
//  * t1 cycles/symbol: EBCOT context modeling is ~15 instructions and 2-4
//    data-dependent branches per decision plus the MQ coder update.  On the
//    P4 (OoO, branch predictor) that lands near 55-60 cycles; the in-order
//    PPE pays ~1.25x; the SPE, with no branch prediction and scalar-on-
//    vector execution, ~2x the PPE.  These put "1 PPE beats 1 SPE on
//    Tier-1" (Fig. 4/5 text) in the model by construction of the hardware,
//    not by fitting the result.
//  * p4_mem_bw = 6.4 GB/s: 800 MHz FSB. chip_mem_bw = 25.6 GB/s XDR.

double CostModel::spe_seconds(const OpCounters& c) const {
  // Dual issue: even (arithmetic) and odd (ls/shuffle) pipes overlap.
  const double even =
      static_cast<double>(c.v_add + c.v_mul_f + c.v_shift + c.v_cmp_sel +
                          c.v_cvt) *
          p_.spe_even_op +
      static_cast<double>(c.v_mul_i_emul) * p_.spe_mul_i_emul;
  const double odd =
      static_cast<double>(c.v_load + c.v_store + c.v_shuffle) * p_.spe_odd_op;
  const double scalar = static_cast<double>(c.s_int + c.s_float) *
                            p_.spe_scalar_op +
                        static_cast<double>(c.s_branch) * p_.spe_branch;
  const double t1 = static_cast<double>(c.t1_symbols) *
                    p_.spe_t1_cycles_per_symbol;
  const double cycles = std::max(even, odd) + scalar + t1;
  return cycles / p_.clock_hz;
}

double CostModel::ppe_seconds(const OpCounters& c) const {
  // The PPE runs the same stage as scalar code: 4 lane-ops per vector op.
  const double lane_ops = 4.0 * static_cast<double>(
      c.v_add + c.v_mul_f + c.v_shift + c.v_cmp_sel + c.v_cvt +
      c.v_mul_i_emul + c.v_load + c.v_store);
  const double cycles =
      lane_ops * p_.ppe_lane_op +
      static_cast<double>(c.s_int) * p_.ppe_scalar_op +
      static_cast<double>(c.s_float) * p_.ppe_float_op +
      static_cast<double>(c.s_branch) * p_.ppe_branch +
      static_cast<double>(c.t1_symbols) * p_.ppe_t1_cycles_per_symbol;
  return cycles / p_.clock_hz;
}

double CostModel::p4_seconds(const OpCounters& c,
                             bool fixed_point_floats) const {
  const double fmul = static_cast<double>(c.v_mul_f) * 4.0;  // lanes
  const double lane_ops = 4.0 * static_cast<double>(
      c.v_add + c.v_shift + c.v_cmp_sel + c.v_cvt + c.v_load + c.v_store);
  const double imul_lane = 4.0 * static_cast<double>(c.v_mul_i_emul);
  double cycles = lane_ops * p_.p4_lane_op +
                  imul_lane * p_.p4_fix_mul64 +
                  static_cast<double>(c.s_int) * p_.p4_scalar_op +
                  static_cast<double>(c.s_float) * p_.p4_float_op +
                  static_cast<double>(c.s_branch) * p_.p4_branch +
                  static_cast<double>(c.t1_symbols) *
                      p_.p4_t1_cycles_per_symbol;
  cycles += fmul * (fixed_point_floats ? p_.p4_fix_mul64 : p_.p4_float_op);
  return cycles / p_.clock_hz;
}

std::uint64_t CostModel::effective_dma_bytes(const OpCounters& c) const {
  // Penalize the share of transfers that missed the cache-line path.
  const std::uint64_t bytes = c.dma_bytes();
  if (c.dma_transfers == 0 || c.dma_unaligned == 0) return bytes;
  const double frac = static_cast<double>(c.dma_unaligned) /
                      static_cast<double>(c.dma_transfers);
  return static_cast<std::uint64_t>(
      static_cast<double>(bytes) *
      (1.0 + frac * (p_.unaligned_dma_penalty - 1.0)));
}

double CostModel::spe_dma_seconds(const OpCounters& c) const {
  return static_cast<double>(effective_dma_bytes(c)) / p_.spe_max_bw;
}

double CostModel::spe_dma_async_seconds(const OpCounters& c) const {
  const std::uint64_t bytes = c.dma_bytes();
  if (bytes == 0 || c.dma_bytes_tagged == 0) return 0.0;
  const double frac = std::min(
      1.0, static_cast<double>(c.dma_bytes_tagged) /
               static_cast<double>(bytes));
  return spe_dma_seconds(c) * frac;
}

double CostModel::spe_busy_seconds(const OpCounters& c,
                                   bool overlap_dma) const {
  const double compute = spe_seconds(c);
  const double dma = spe_dma_seconds(c);
  if (!overlap_dma) return compute + dma;
  const double dma_async = spe_dma_async_seconds(c);
  return std::max(compute, dma_async) + (dma - dma_async);
}

double CostModel::spe_dma_exposed_seconds(const OpCounters& c,
                                          bool overlap_dma) const {
  return spe_busy_seconds(c, overlap_dma) - spe_seconds(c);
}

}  // namespace cj2k::cell
