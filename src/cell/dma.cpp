#include "cell/dma.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "cell/audit.hpp"
#include "cell/trace.hpp"
#include "common/align.hpp"
#include "common/error.hpp"

namespace cj2k::cell {

void DmaEngine::validate(const void* a, const void* b, std::size_t bytes,
                         bool& efficient) const {
  if (bytes == 0) throw CellHardwareError("zero-byte DMA transfer");
  if (bytes > kMaxTransfer) {
    throw CellHardwareError("DMA transfer exceeds 16 KB MFC limit");
  }
  const bool small = bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8;
  if (small) {
    // Naturally aligned small transfers.
    if (!is_aligned(a, bytes) || !is_aligned(b, bytes)) {
      throw CellHardwareError("small DMA transfer must be naturally aligned");
    }
    efficient = false;
    return;
  }
  if (!is_multiple_of(bytes, kQuadWordBytes) ||
      !is_aligned(a, kQuadWordBytes) || !is_aligned(b, kQuadWordBytes)) {
    throw CellHardwareError(
        "DMA transfer must be a multiple of 16 bytes with quad-word "
        "aligned addresses");
  }
  // The *efficient* path: both addresses cache-line aligned and the size an
  // even multiple of the line (Kistler et al., cited by the paper).
  efficient = is_aligned(a, kCacheLineBytes) &&
              is_aligned(b, kCacheLineBytes) &&
              is_multiple_of(bytes, kCacheLineBytes);
}

void DmaEngine::get_impl(void* ls_dst, const void* main_src,
                         std::size_t bytes) {
  bool efficient = false;
  validate(ls_dst, main_src, bytes, efficient);
  std::memcpy(ls_dst, main_src, bytes);
  c_->dma_bytes_in += bytes;
  ++c_->dma_transfers;
  if (!efficient) ++c_->dma_unaligned;
  if (audit_ != nullptr) audit_->record_dma(bytes, efficient);
}

void DmaEngine::put_impl(const void* ls_src, void* main_dst,
                         std::size_t bytes) {
  bool efficient = false;
  validate(ls_src, main_dst, bytes, efficient);
  std::memcpy(main_dst, ls_src, bytes);
  c_->dma_bytes_out += bytes;
  ++c_->dma_transfers;
  if (!efficient) ++c_->dma_unaligned;
  if (audit_ != nullptr) audit_->record_dma(bytes, efficient);
}

void DmaEngine::get(void* ls_dst, const void* main_src, std::size_t bytes) {
  get_impl(ls_dst, main_src, bytes);
  if (trace_ != nullptr) trace_->on_sync(bytes, /*is_get=*/true);
}

void DmaEngine::put(const void* ls_src, void* main_dst, std::size_t bytes) {
  put_impl(ls_src, main_dst, bytes);
  if (trace_ != nullptr) trace_->on_sync(bytes, /*is_get=*/false);
}

void DmaEngine::issue_async(void* ls, std::size_t bytes, unsigned tag,
                            bool is_get, bool fenced) {
  // Hazard: the new transfer's Local Store range overlaps one still in
  // flight.  A fenced issue on the *same* tag is the legal re-targeting
  // idiom (ordered after the in-flight transfer); everything else is the
  // classic double-buffering bug.
  const auto lo = reinterpret_cast<std::uintptr_t>(ls);
  const std::uintptr_t hi = lo + bytes;
  for (const Pending& p : pending_) {
    if (lo < p.hi && p.lo < hi && !(fenced && p.tag == tag)) {
      report_hazard(TagHazard::kReuseInFlight,
                    "tag " + std::to_string(tag) +
                        " re-targets a Local Store range in flight on tag " +
                        std::to_string(p.tag) + " without a same-tag fence");
      break;
    }
  }
  pending_.push_back({lo, hi, tag, is_get});
  pending_mask_ |= 1u << tag;
  issued_mask_ |= 1u << tag;
  ++c_->dma_tagged_transfers;
  c_->dma_bytes_tagged += bytes;
  if (trace_ != nullptr) trace_->on_issue(tag, bytes, is_get, fenced);
}

void DmaEngine::get_async(void* ls_dst, const void* main_src,
                          std::size_t bytes, unsigned tag) {
  if (tag >= kNumTags) throw CellHardwareError("DMA tag out of range");
  get_impl(ls_dst, main_src, bytes);
  issue_async(ls_dst, bytes, tag, /*is_get=*/true, /*fenced=*/false);
}

void DmaEngine::put_async(const void* ls_src, void* main_dst,
                          std::size_t bytes, unsigned tag) {
  if (tag >= kNumTags) throw CellHardwareError("DMA tag out of range");
  put_impl(ls_src, main_dst, bytes);
  issue_async(const_cast<void*>(ls_src), bytes, tag, /*is_get=*/false,
              /*fenced=*/false);
}

void DmaEngine::getf_async(void* ls_dst, const void* main_src,
                           std::size_t bytes, unsigned tag) {
  if (tag >= kNumTags) throw CellHardwareError("DMA tag out of range");
  get_impl(ls_dst, main_src, bytes);
  issue_async(ls_dst, bytes, tag, /*is_get=*/true, /*fenced=*/true);
}

void DmaEngine::putf_async(const void* ls_src, void* main_dst,
                           std::size_t bytes, unsigned tag) {
  if (tag >= kNumTags) throw CellHardwareError("DMA tag out of range");
  put_impl(ls_src, main_dst, bytes);
  issue_async(const_cast<void*>(ls_src), bytes, tag, /*is_get=*/false,
              /*fenced=*/true);
}

void DmaEngine::wait_tag(unsigned tag) {
  if (tag >= kNumTags) throw CellHardwareError("DMA tag out of range");
  wait_tag_mask(1u << tag);
}

void DmaEngine::wait_tag_mask(std::uint32_t mask) {
  if (mask == 0) {
    throw CellHardwareError("DMA tag wait on an empty mask");
  }
  if ((mask & issued_mask_) == 0) {
    throw CellHardwareError(
        "DMA tag wait on tags never issued (wait on nothing)");
  }
  retire_tags(mask, __builtin_popcount(mask) == 1 ? "wait_tag"
                                                  : "wait_tag_mask");
}

void DmaEngine::wait_all() { retire_tags(~0u, "wait_all"); }

void DmaEngine::retire_tags(std::uint32_t mask, const char* wait_kind) {
  const std::uint32_t retired = pending_mask_ & mask;
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [mask](const Pending& p) {
                                  return (mask & (1u << p.tag)) != 0;
                                }),
                 pending_.end());
  pending_mask_ &= ~mask;
  if (trace_ != nullptr && retired != 0) trace_->on_wait(retired, wait_kind);
}

void DmaEngine::touch(const void* ls_ptr, std::size_t bytes) {
  const auto lo = reinterpret_cast<std::uintptr_t>(ls_ptr);
  const std::uintptr_t hi = lo + bytes;
  for (const Pending& p : pending_) {
    if (lo < p.hi && p.lo < hi) {
      report_hazard(TagHazard::kTouchBeforeWait,
                    "buffer touched while its " +
                        std::string(p.is_get ? "get" : "put") +
                        " is in flight on tag " + std::to_string(p.tag));
      return;
    }
  }
}

void DmaEngine::finish_kernel() {
  if (pending_mask_ != 0) {
    report_hazard(TagHazard::kPendingAtExit,
                  "kernel exit with tags in flight (pending mask 0x" +
                      [this] {
                        char buf[16];
                        std::snprintf(buf, sizeof(buf), "%x", pending_mask_);
                        return std::string(buf);
                      }() +
                      ")");
  }
  reset_tags();
}

void DmaEngine::reset_tags() {
  if (trace_ != nullptr) trace_->on_reset();
  pending_.clear();
  pending_mask_ = 0;
  issued_mask_ = 0;
}

void DmaEngine::report_hazard(TagHazard kind, const std::string& detail) {
  if (audit_ != nullptr) audit_->record_tag_hazard(kind, detail);
}

void DmaEngine::get_large(void* ls_dst, const void* main_src,
                          std::size_t bytes) {
  auto* d = static_cast<std::uint8_t*>(ls_dst);
  const auto* s = static_cast<const std::uint8_t*>(main_src);
  while (bytes > 0) {
    const std::size_t n = bytes < kMaxTransfer ? bytes : kMaxTransfer;
    get(d, s, n);
    d += n;
    s += n;
    bytes -= n;
  }
}

void DmaEngine::put_large(const void* ls_src, void* main_dst,
                          std::size_t bytes) {
  const auto* s = static_cast<const std::uint8_t*>(ls_src);
  auto* d = static_cast<std::uint8_t*>(main_dst);
  while (bytes > 0) {
    const std::size_t n = bytes < kMaxTransfer ? bytes : kMaxTransfer;
    put(s, d, n);
    s += n;
    d += n;
    bytes -= n;
  }
}

}  // namespace cj2k::cell
