#include "cell/dma.hpp"

#include <cstring>

#include "cell/audit.hpp"
#include "common/align.hpp"
#include "common/error.hpp"

namespace cj2k::cell {

void DmaEngine::validate(const void* a, const void* b, std::size_t bytes,
                         bool& efficient) const {
  if (bytes == 0) throw CellHardwareError("zero-byte DMA transfer");
  if (bytes > kMaxTransfer) {
    throw CellHardwareError("DMA transfer exceeds 16 KB MFC limit");
  }
  const bool small = bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8;
  if (small) {
    // Naturally aligned small transfers.
    if (!is_aligned(a, bytes) || !is_aligned(b, bytes)) {
      throw CellHardwareError("small DMA transfer must be naturally aligned");
    }
    efficient = false;
    return;
  }
  if (!is_multiple_of(bytes, kQuadWordBytes) ||
      !is_aligned(a, kQuadWordBytes) || !is_aligned(b, kQuadWordBytes)) {
    throw CellHardwareError(
        "DMA transfer must be a multiple of 16 bytes with quad-word "
        "aligned addresses");
  }
  // The *efficient* path: both addresses cache-line aligned and the size an
  // even multiple of the line (Kistler et al., cited by the paper).
  efficient = is_aligned(a, kCacheLineBytes) &&
              is_aligned(b, kCacheLineBytes) &&
              is_multiple_of(bytes, kCacheLineBytes);
}

void DmaEngine::get(void* ls_dst, const void* main_src, std::size_t bytes) {
  bool efficient = false;
  validate(ls_dst, main_src, bytes, efficient);
  std::memcpy(ls_dst, main_src, bytes);
  c_->dma_bytes_in += bytes;
  ++c_->dma_transfers;
  if (!efficient) ++c_->dma_unaligned;
  if (audit_ != nullptr) audit_->record_dma(bytes, efficient);
}

void DmaEngine::put(const void* ls_src, void* main_dst, std::size_t bytes) {
  bool efficient = false;
  validate(ls_src, main_dst, bytes, efficient);
  std::memcpy(main_dst, ls_src, bytes);
  c_->dma_bytes_out += bytes;
  ++c_->dma_transfers;
  if (!efficient) ++c_->dma_unaligned;
  if (audit_ != nullptr) audit_->record_dma(bytes, efficient);
}

void DmaEngine::get_large(void* ls_dst, const void* main_src,
                          std::size_t bytes) {
  auto* d = static_cast<std::uint8_t*>(ls_dst);
  const auto* s = static_cast<const std::uint8_t*>(main_src);
  while (bytes > 0) {
    const std::size_t n = bytes < kMaxTransfer ? bytes : kMaxTransfer;
    get(d, s, n);
    d += n;
    s += n;
    bytes -= n;
  }
}

void DmaEngine::put_large(const void* ls_src, void* main_dst,
                          std::size_t bytes) {
  const auto* s = static_cast<const std::uint8_t*>(ls_src);
  auto* d = static_cast<std::uint8_t*>(main_dst);
  while (bytes > 0) {
    const std::size_t n = bytes < kMaxTransfer ? bytes : kMaxTransfer;
    put(s, d, n);
    s += n;
    d += n;
    bytes -= n;
  }
}

}  // namespace cj2k::cell
