#include "cell/machine.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "cell/trace.hpp"
#include "common/error.hpp"

namespace cj2k::cell {

Machine::Machine(const MachineConfig& cfg) : cfg_(cfg), model_(cfg.cost) {
  CJ2K_CHECK_MSG(cfg.num_spes >= 0 && cfg.num_spes <= 64,
                 "SPE count out of range");
  CJ2K_CHECK_MSG(cfg.num_ppe_threads >= 0 && cfg.num_ppe_threads <= 8,
                 "PPE thread count out of range");
  CJ2K_CHECK_MSG(cfg.chips >= 1 && cfg.chips <= 8, "chip count out of range");
  spes_.reserve(static_cast<std::size_t>(cfg.num_spes));
  for (int i = 0; i < cfg.num_spes; ++i) {
    spes_.push_back(std::make_unique<SpeContext>());
  }
}

void Machine::attach_audit(InvariantAudit* audit) {
  for (auto& s : spes_) {
    s->dma.attach_audit(audit);
    s->ls.attach_audit(audit);
  }
}

void Machine::attach_trace(TraceRecorder* trace) {
  trace_ = trace;
  for (int i = 0; i < cfg_.num_spes; ++i) {
    spes_[static_cast<std::size_t>(i)]->dma.attach_trace(
        trace == nullptr ? nullptr : &trace->dma_log(i));
  }
}

StageTiming Machine::run_data_parallel(
    const std::string& name,
    const std::function<void(int, SpeContext&)>& spe_work,
    const std::function<void(OpCounters&)>& ppe_work, bool overlap_dma) {
  for (int i = 0; i < cfg_.num_spes; ++i) {
    SpeContext& s = *spes_[static_cast<std::size_t>(i)];
    s.counters.reset();
    s.ls.reset();
    s.dma.reset_tags();
    if (trace_ != nullptr) trace_->dma_log(i).clear();
  }
  OpCounters ppe_counters;

  // Thread-local job/tile provenance does not cross std::thread spawns;
  // carry the caller's scopes into each SPE thread by hand.
  const int tile_idx = AuditTileScope::current();
  const int job_idx = AuditJobScope::current();

  std::vector<std::thread> threads;
  std::exception_ptr first_error;
  std::mutex error_mu;
  threads.reserve(spes_.size());
  for (int i = 0; i < cfg_.num_spes; ++i) {
    threads.emplace_back([&, i] {
      try {
        AuditJobScope job(job_idx);
        AuditTileScope tile(tile_idx);
        AuditSiteScope site(name.c_str());
        spe_work(i, *spes_[static_cast<std::size_t>(i)]);
        // Epilogue check while the site scope is live: a kernel that
        // returns with tags in flight is a tag-discipline hazard.
        spes_[static_cast<std::size_t>(i)]->dma.finish_kernel();
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  if (ppe_work) {
    try {
      AuditSiteScope site(name.c_str());
      ppe_work(ppe_counters);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  std::vector<OpCounters> spe_counts;
  spe_counts.reserve(spes_.size());
  for (auto& s : spes_) spe_counts.push_back(s->counters);
  StageTiming t = compose(name, spe_counts, {ppe_counters}, overlap_dma);
  if (trace_ != nullptr) {
    emit_stage_trace(t, spe_counts, ppe_counters, overlap_dma,
                     static_cast<bool>(ppe_work));
  }
  return t;
}

StageTiming Machine::compose(const std::string& name,
                             const std::vector<OpCounters>& spe_counters,
                             const std::vector<OpCounters>& ppe_counters,
                             bool overlap_dma) const {
  StageTiming t;
  t.name = name;

  double worst_spe = 0.0;
  double worst_spe_serial = 0.0;
  double compute_sum = 0.0;
  double exposed_sum = 0.0;
  std::uint64_t total_eff_bytes = 0;
  for (const auto& c : spe_counters) {
    const double compute = model_.spe_seconds(c);
    const double dma = model_.spe_dma_seconds(c);
    t.spe_compute = std::max(t.spe_compute, compute);
    t.spe_dma = std::max(t.spe_dma, dma);
    // Only the tagged (asynchronous) share of the traffic hides behind
    // compute; synchronous transfers stall the SPE either way.
    const double spe_time = model_.spe_busy_seconds(c, overlap_dma);
    worst_spe = std::max(worst_spe, spe_time);
    worst_spe_serial = std::max(worst_spe_serial, compute + dma);
    compute_sum += compute;
    exposed_sum += spe_time - compute;  // DMA latency the SPE actually ate.
    total_eff_bytes += model_.effective_dma_bytes(c);
    t.dma_bytes += c.dma_bytes();
  }
  for (const auto& c : ppe_counters) {
    t.ppe = std::max(t.ppe, model_.ppe_seconds(c));
  }
  t.dma_aggregate = static_cast<double>(total_eff_bytes) / total_mem_bw();
  t.seconds = std::max({worst_spe, t.dma_aggregate, t.ppe});
  if (overlap_dma) {
    // What the stage would have cost with every transfer synchronous —
    // the double-buffering credit reported per stage and in BENCH_JSON.
    t.dma_overlap_saved =
        std::max({worst_spe_serial, t.dma_aggregate, t.ppe}) - t.seconds;
  }

  // Stall attribution (DESIGN.md §11): pool-averaged shares that sum to
  // `seconds` by construction.  The residual idle — time the average SPE
  // spent waiting for the stage to end — is charged to whichever resource
  // set the stage length: the PPE (serial section), the memory bus
  // (aggregate-bandwidth ceiling), or, when the slowest SPE set it, load
  // imbalance, which this taxonomy files under queue-empty.
  const std::size_t n = spe_counters.size();
  if (n == 0 || t.seconds <= 0.0) {
    t.stall.ppe_serial = t.seconds;
  } else {
    t.stall.busy = compute_sum / static_cast<double>(n);
    t.stall.dma_wait = exposed_sum / static_cast<double>(n);
    const double idle = t.seconds - t.stall.busy - t.stall.dma_wait;
    if (idle > 0.0) {
      if (t.ppe > worst_spe && t.ppe >= t.dma_aggregate) {
        t.stall.ppe_serial = idle;
      } else if (t.dma_aggregate > worst_spe) {
        t.stall.dma_wait += idle;
      } else {
        t.stall.queue_empty = idle;
      }
    } else {
      t.stall.busy += idle;  // Floating-point residue; keep the sum exact.
    }
  }
  return t;
}

void Machine::emit_stage_trace(const StageTiming& t,
                               const std::vector<OpCounters>& spe_counters,
                               const OpCounters& ppe_counters,
                               bool overlap_dma, bool had_ppe_work) {
  TraceRecorder& rec = *trace_;
  const double t0 = rec.clock();
  // The residual-idle reason for every SPE in this stage mirrors the
  // compose() attribution above.
  const char* idle_name = "stall: queue-empty";
  if (t.stall.ppe_serial > 0.0) {
    idle_name = "stall: ppe-serial";
  } else if (t.seconds > t.spe_compute &&
             t.dma_aggregate >= t.seconds - 1e-15) {
    idle_name = "stall: dma-wait";
  }
  char args[192];
  for (std::size_t i = 0; i < spe_counters.size(); ++i) {
    const OpCounters& c = spe_counters[i];
    const double compute = model_.spe_seconds(c);
    const double dma = model_.spe_dma_seconds(c);
    const double busy = model_.spe_busy_seconds(c, overlap_dma);
    const int track = rec.spe_track(static_cast<int>(i));
    if (busy > 0.0) {
      const double exposed = busy - compute;
      std::snprintf(args, sizeof args,
                    "\"compute_s\":%.9g,\"dma_s\":%.9g,"
                    "\"dma_hidden_s\":%.9g,\"dma_exposed_s\":%.9g,"
                    "\"dma_bytes\":%llu",
                    compute, dma, dma - exposed, exposed,
                    static_cast<unsigned long long>(c.dma_bytes()));
      rec.emit_span(track, t.name, "stage", t0, busy, args);
      rec.flush_dma_log(static_cast<int>(i), t0, busy);
    }
    const double idle = t.seconds - busy;
    if (idle > 1e-12) {
      rec.emit_span(track, idle_name, "stall", t0 + busy, idle);
    }
  }
  const double ppe = model_.ppe_seconds(ppe_counters);
  if (had_ppe_work && ppe > 0.0) {
    rec.emit_span(rec.ppe_track(0), t.name + " (ppe)", "stage", t0, ppe);
  }
  std::snprintf(args, sizeof args,
                "\"seconds\":%.9g,\"dma_aggregate_s\":%.9g,"
                "\"dma_overlap_saved_s\":%.9g,\"dma_bytes\":%llu",
                t.seconds, t.dma_aggregate, t.dma_overlap_saved,
                static_cast<unsigned long long>(t.dma_bytes));
  rec.emit_span(rec.driver_track(), t.name, "stage", t0, t.seconds, args);
  rec.advance_clock(t.seconds);
}

}  // namespace cj2k::cell
