#include "cell/machine.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"

namespace cj2k::cell {

Machine::Machine(const MachineConfig& cfg) : cfg_(cfg), model_(cfg.cost) {
  CJ2K_CHECK_MSG(cfg.num_spes >= 0 && cfg.num_spes <= 64,
                 "SPE count out of range");
  CJ2K_CHECK_MSG(cfg.num_ppe_threads >= 0 && cfg.num_ppe_threads <= 8,
                 "PPE thread count out of range");
  CJ2K_CHECK_MSG(cfg.chips >= 1 && cfg.chips <= 8, "chip count out of range");
  spes_.reserve(static_cast<std::size_t>(cfg.num_spes));
  for (int i = 0; i < cfg.num_spes; ++i) {
    spes_.push_back(std::make_unique<SpeContext>());
  }
}

void Machine::attach_audit(InvariantAudit* audit) {
  for (auto& s : spes_) {
    s->dma.attach_audit(audit);
    s->ls.attach_audit(audit);
  }
}

StageTiming Machine::run_data_parallel(
    const std::string& name,
    const std::function<void(int, SpeContext&)>& spe_work,
    const std::function<void(OpCounters&)>& ppe_work, bool overlap_dma) {
  for (auto& s : spes_) {
    s->counters.reset();
    s->ls.reset();
    s->dma.reset_tags();
  }
  OpCounters ppe_counters;

  // Thread-local tile provenance does not cross std::thread spawns; carry
  // the caller's tile scope into each SPE thread by hand.
  const int tile_idx = AuditTileScope::current();

  std::vector<std::thread> threads;
  std::exception_ptr first_error;
  std::mutex error_mu;
  threads.reserve(spes_.size());
  for (int i = 0; i < cfg_.num_spes; ++i) {
    threads.emplace_back([&, i] {
      try {
        AuditTileScope tile(tile_idx);
        AuditSiteScope site(name.c_str());
        spe_work(i, *spes_[static_cast<std::size_t>(i)]);
        // Epilogue check while the site scope is live: a kernel that
        // returns with tags in flight is a tag-discipline hazard.
        spes_[static_cast<std::size_t>(i)]->dma.finish_kernel();
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  if (ppe_work) {
    try {
      AuditSiteScope site(name.c_str());
      ppe_work(ppe_counters);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  std::vector<OpCounters> spe_counts;
  spe_counts.reserve(spes_.size());
  for (auto& s : spes_) spe_counts.push_back(s->counters);
  return compose(name, spe_counts, {ppe_counters}, overlap_dma);
}

StageTiming Machine::compose(const std::string& name,
                             const std::vector<OpCounters>& spe_counters,
                             const std::vector<OpCounters>& ppe_counters,
                             bool overlap_dma) const {
  StageTiming t;
  t.name = name;

  double worst_spe = 0.0;
  double worst_spe_serial = 0.0;
  std::uint64_t total_eff_bytes = 0;
  for (const auto& c : spe_counters) {
    const double compute = model_.spe_seconds(c);
    const double dma = model_.spe_dma_seconds(c);
    t.spe_compute = std::max(t.spe_compute, compute);
    t.spe_dma = std::max(t.spe_dma, dma);
    // Only the tagged (asynchronous) share of the traffic hides behind
    // compute; synchronous transfers stall the SPE either way.
    const double dma_async = model_.spe_dma_async_seconds(c);
    const double spe_time = overlap_dma
                                ? std::max(compute, dma_async) +
                                      (dma - dma_async)
                                : compute + dma;
    worst_spe = std::max(worst_spe, spe_time);
    worst_spe_serial = std::max(worst_spe_serial, compute + dma);
    total_eff_bytes += model_.effective_dma_bytes(c);
    t.dma_bytes += c.dma_bytes();
  }
  for (const auto& c : ppe_counters) {
    t.ppe = std::max(t.ppe, model_.ppe_seconds(c));
  }
  t.dma_aggregate = static_cast<double>(total_eff_bytes) / total_mem_bw();
  t.seconds = std::max({worst_spe, t.dma_aggregate, t.ppe});
  if (overlap_dma) {
    // What the stage would have cost with every transfer synchronous —
    // the double-buffering credit reported per stage and in BENCH_JSON.
    t.dma_overlap_saved =
        std::max({worst_spe_serial, t.dma_aggregate, t.ppe}) - t.seconds;
  }
  return t;
}

}  // namespace cj2k::cell
