#include "cell/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace cj2k::cell {

double MetricsRegistry::get(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{";
  char buf[64];
  bool first = true;
  for (const auto& [key, value] : values_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += key;  // Keys are dotted identifiers; nothing to escape.
    out += "\":";
    const double v = std::isfinite(value) ? value : 0.0;
    std::snprintf(buf, sizeof buf, "%.9g", v);
    out += buf;
  }
  out += '}';
  return out;
}

}  // namespace cj2k::cell
