// cellcheck tier 2: the runtime Cell-invariant audit layer.
//
// The paper's performance story rests on invariants the type system cannot
// see — every DMA cache-line aligned with a line-multiple size (§2), Local
// Store usage bounded and constant per kernel (§2).  The DmaEngine and
// LocalStore report every event here, tagged with the stage that issued it
// (AuditSiteScope, set by Machine::run_data_parallel), so a run produces a
// per-stage ledger: transfers, bytes, the inefficient share, and the Local
// Store high-water mark.  Strict mode turns any inefficient transfer or
// over-budget allocation into a hard AuditError at the faulting call, which
// is how the test suite pins the "all SPE DMA is efficient" claim.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cell/dma.hpp"

namespace cj2k::cell {

struct AuditConfig {
  bool enabled = false;
  /// Throw AuditError on the first inefficient DMA or LS over-budget event.
  bool strict = false;
  /// Local Store bytes a kernel may hold at once; 0 means the full data
  /// capacity (LocalStore::kCapacity minus the code reserve).
  std::size_t ls_budget = 0;
};

/// Ledger for one site (stage name) — what the report breaks down by.
struct AuditSiteReport {
  std::string site;
  std::uint64_t dma_transfers = 0;
  std::uint64_t dma_bytes = 0;
  std::uint64_t dma_inefficient = 0;        ///< Not line-aligned/line-sized.
  std::uint64_t dma_inefficient_bytes = 0;
  std::uint64_t ls_peak = 0;                ///< High-water LS bytes.
  std::uint64_t ls_over_budget = 0;         ///< Allocations past the budget.
  // Tag-discipline hazards (DmaEngine async transfers; DESIGN.md §10).
  std::uint64_t tag_touch_before_wait = 0;
  std::uint64_t tag_reuse_in_flight = 0;
  std::uint64_t tag_pending_at_exit = 0;

  std::uint64_t tag_hazards() const {
    return tag_touch_before_wait + tag_reuse_in_flight + tag_pending_at_exit;
  }
};

struct AuditReport {
  bool enabled = false;
  std::uint64_t dma_transfers = 0;
  std::uint64_t dma_bytes = 0;
  std::uint64_t dma_inefficient = 0;
  std::uint64_t dma_inefficient_bytes = 0;
  std::uint64_t ls_peak = 0;       ///< Max over all sites.
  std::uint64_t ls_budget = 0;     ///< The budget the run was held to.
  std::uint64_t ls_over_budget = 0;
  std::uint64_t tag_touch_before_wait = 0;
  std::uint64_t tag_reuse_in_flight = 0;
  std::uint64_t tag_pending_at_exit = 0;
  std::vector<AuditSiteReport> sites;  ///< Sorted by site name.

  std::uint64_t tag_hazards() const {
    return tag_touch_before_wait + tag_reuse_in_flight + tag_pending_at_exit;
  }

  /// True when the run upheld all three invariants: efficient DMA, bounded
  /// Local Store, and clean tag discipline.
  bool clean() const {
    return dma_inefficient == 0 && ls_over_budget == 0 && tag_hazards() == 0;
  }

  /// Human-readable multi-line table (one row per site).
  std::string summary() const;
};

/// RAII thread-local provenance label.  DMA and LS events recorded while a
/// scope is alive are attributed to its site; scopes nest (inner wins).
class AuditSiteScope {
 public:
  explicit AuditSiteScope(const char* site);
  ~AuditSiteScope();
  AuditSiteScope(const AuditSiteScope&) = delete;
  AuditSiteScope& operator=(const AuditSiteScope&) = delete;

  /// The innermost live site label on this thread ("(untagged)" if none).
  static const char* current();

 private:
  const char* prev_;
};

/// RAII thread-local tile provenance for multi-tile encodes.  While a scope
/// is alive, audit events on this thread are attributed to "tileN/<site>"
/// instead of the bare site, so a strict-mode violation names the offending
/// tile.  -1 (the default when no scope is alive) means "no tile" and
/// leaves single-tile site names unchanged.
class AuditTileScope {
 public:
  explicit AuditTileScope(int tile);
  ~AuditTileScope();
  AuditTileScope(const AuditTileScope&) = delete;
  AuditTileScope& operator=(const AuditTileScope&) = delete;

  /// The innermost live tile index on this thread (-1 if none).
  static int current();

 private:
  int prev_;
};

/// RAII thread-local job provenance for the encode service (DESIGN.md §12).
/// While a scope is alive, audit events on this thread are attributed to
/// "jobN/<site>" (composing with tile provenance as "jobN/tileM/<site>"),
/// so a strict-mode violation in a multi-job service run names the
/// offending job.  -1 (the default when no scope is alive) means "no job"
/// and leaves single-job site names unchanged.
class AuditJobScope {
 public:
  explicit AuditJobScope(int job);
  ~AuditJobScope();
  AuditJobScope(const AuditJobScope&) = delete;
  AuditJobScope& operator=(const AuditJobScope&) = delete;

  /// The innermost live job index on this thread (-1 if none).
  static int current();

 private:
  int prev_;
};

/// Per-encode invariant ledger.  Thread-safe: SPE kernels on host threads
/// record concurrently.
class InvariantAudit {
 public:
  explicit InvariantAudit(const AuditConfig& cfg);

  /// DmaEngine calls this for every transfer the MFC would accept.
  /// Throws AuditError in strict mode when the transfer is inefficient.
  void record_dma(std::size_t bytes, bool efficient);

  /// LocalStore calls this after every successful allocation with the new
  /// usage level.  Throws AuditError in strict mode when over budget.
  void record_ls(std::size_t used_now, std::size_t data_capacity);

  /// DmaEngine calls this on every tag-discipline hazard (touch before
  /// wait, in-flight reuse, pending tags at kernel exit).  Throws
  /// AuditError in strict mode.
  void record_tag_hazard(TagHazard kind, const std::string& detail);

  const AuditConfig& config() const { return cfg_; }

  AuditReport report() const;

 private:
  struct SiteAccum {
    std::uint64_t dma_transfers = 0;
    std::uint64_t dma_bytes = 0;
    std::uint64_t dma_inefficient = 0;
    std::uint64_t dma_inefficient_bytes = 0;
    std::uint64_t ls_peak = 0;
    std::uint64_t ls_over_budget = 0;
    std::uint64_t tag_touch_before_wait = 0;
    std::uint64_t tag_reuse_in_flight = 0;
    std::uint64_t tag_pending_at_exit = 0;
  };

  AuditConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::string, SiteAccum> sites_;
};

}  // namespace cj2k::cell
