// SPE Local Store model: a 256 KB scratchpad with explicit allocation.
// There is no cache and no fallback — a kernel whose working set does not
// fit throws, exactly the constraint that drives the paper's constant-
// memory data decomposition scheme (§2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/align.hpp"

namespace cj2k::cell {

class InvariantAudit;

class LocalStore {
 public:
  /// Real SPE Local Store capacity.
  static constexpr std::size_t kCapacity = 256 * 1024;

  /// `code_reserve` models the bytes taken by program text + stack; the
  /// paper notes shorter kernels leave more room for buffering.
  explicit LocalStore(std::size_t code_reserve = 48 * 1024);

  /// Bump-allocates `count` elements of T aligned to `align` bytes.
  /// The default is full cache-line alignment so buffers qualify for the
  /// efficient DMA path; pass kQuadWordBytes for SIMD-only scratch.
  /// Throws CellHardwareError when the Local Store is exhausted.
  template <typename T>
  T* alloc(std::size_t count, std::size_t align = kCacheLineBytes) {
    return static_cast<T*>(alloc_bytes(count * sizeof(T), align));
  }

  /// Raw allocation.
  void* alloc_bytes(std::size_t bytes, std::size_t align);

  /// Frees everything allocated since construction (kernel epilogue).
  void reset();

  /// Bytes currently allocated (excluding the code reserve).
  std::size_t used() const { return used_; }

  /// Bytes still available.
  std::size_t available() const { return data_capacity_ - used_; }

  /// High-water mark across the LocalStore's lifetime.
  std::size_t peak_used() const { return peak_; }

  /// Attaches the invariant audit every allocation reports into (cellcheck
  /// tier 2); nullptr detaches.
  void attach_audit(InvariantAudit* audit) { audit_ = audit; }

 private:
  std::unique_ptr<std::uint8_t[]> arena_;
  std::size_t data_capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
  InvariantAudit* audit_ = nullptr;
};

}  // namespace cj2k::cell
