// MFC DMA model.  Enforces the Cell's transfer rules (size/alignment) and
// records traffic for the bandwidth model.  The paper's decomposition
// scheme exists precisely to make every transfer land on the "efficient"
// path here: cache-line aligned on both sides, size a multiple of the line.
//
// Transfers come in two flavours:
//  * synchronous get/put — the transfer completes before the call returns
//    (compute and DMA serialize, the Muta baseline condition);
//  * tag-grouped asynchronous get_async/put_async — the MFC idiom the
//    paper's double buffering rests on.  A transfer is issued on one of 32
//    tag groups and completes only when the kernel waits on its tag
//    (wait_tag / wait_tag_mask / wait_all).  The fenced variants
//    (getf_async/putf_async, the mfc_getf/putf commands) are ordered after
//    every previously issued transfer in the same tag group, which is what
//    makes re-targeting a Local Store buffer without an intervening wait
//    legal.
//
// Functionally the model copies data at issue time (host threads share one
// address space), but it tracks per-tag in-flight Local Store ranges and
// reports tag-discipline hazards to the invariant audit (cellcheck tier 2):
// a buffer touched while its transfer is in flight, a buffer re-targeted
// while in flight, and a kernel exiting with pending tags.  Hard MFC misuse
// (tag out of range, waiting on nothing) throws CellHardwareError.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cell/counters.hpp"

namespace cj2k::cell {

class InvariantAudit;
class DmaTraceLog;

/// Tag-discipline hazard classes the DmaEngine reports to the audit.  Each
/// maps 1:1 onto a cellcheck tier-4 static rule (DESIGN.md §10).
enum class TagHazard {
  kTouchBeforeWait,  ///< Buffer read/written while its transfer is in flight.
  kReuseInFlight,    ///< Buffer re-targeted without a same-tag fence.
  kPendingAtExit,    ///< Kernel returned with tags still in flight.
};

class DmaEngine {
 public:
  /// Largest single MFC transfer.
  static constexpr std::size_t kMaxTransfer = 16 * 1024;
  /// MFC tag groups (tags 0 .. kNumTags-1).
  static constexpr unsigned kNumTags = 32;

  explicit DmaEngine(OpCounters& c) : c_(&c) {}

  /// Main memory -> Local Store.  Throws CellHardwareError on transfers the
  /// MFC would reject (size not in {1,2,4,8,16k·n}, mismatched alignment).
  void get(void* ls_dst, const void* main_src, std::size_t bytes);

  /// Local Store -> main memory.
  void put(const void* ls_src, void* main_dst, std::size_t bytes);

  /// Convenience: transfer of arbitrary size, split into <=16 KB pieces
  /// (what a DMA list would do).
  void get_large(void* ls_dst, const void* main_src, std::size_t bytes);
  void put_large(const void* ls_src, void* main_dst, std::size_t bytes);

  // --- Tag-grouped asynchronous transfers -----------------------------------

  /// Issues a transfer on `tag` without waiting for completion.  Same
  /// size/alignment rules as the synchronous calls; throws CellHardwareError
  /// when `tag >= kNumTags`.
  void get_async(void* ls_dst, const void* main_src, std::size_t bytes,
                 unsigned tag);
  void put_async(const void* ls_src, void* main_dst, std::size_t bytes,
                 unsigned tag);

  /// Fenced issue (mfc_getf/mfc_putf): ordered after every transfer
  /// previously issued on the same tag, so the same Local Store buffer may
  /// be re-targeted without a wait in between.
  void getf_async(void* ls_dst, const void* main_src, std::size_t bytes,
                  unsigned tag);
  void putf_async(const void* ls_src, void* main_dst, std::size_t bytes,
                  unsigned tag);

  /// Blocks until every transfer issued on `tag` has completed.  Throws
  /// CellHardwareError when the tag is out of range or when no transfer was
  /// ever issued on it since the last reset ("wait on nothing").
  void wait_tag(unsigned tag);

  /// Waits on every tag in `mask` (bit t = tag t).  Throws
  /// CellHardwareError when the mask is empty or when none of its tags has
  /// ever been issued on.  Re-waiting an already-complete tag is benign.
  void wait_tag_mask(std::uint32_t mask);

  /// Waits for all in-flight transfers; no-op when nothing is pending
  /// (the mfc_write_tag_mask(~0) epilogue idiom).
  void wait_all();

  /// Declares that the kernel is about to read or write `bytes` at
  /// `ls_ptr`.  Reports a touch-before-wait hazard to the audit when the
  /// range overlaps an in-flight transfer.
  void touch(const void* ls_ptr, std::size_t bytes);

  /// Kernel epilogue check: reports a pending-at-exit hazard when tags are
  /// still in flight, then clears all tag state.
  void finish_kernel();

  /// Clears all tag state (stage prologue; Machine::run_data_parallel calls
  /// this alongside the counter reset).
  void reset_tags();

  /// Bitmask of tags with in-flight transfers.
  std::uint32_t pending_mask() const { return pending_mask_; }

  /// Bitmask of tags issued on since the last reset (sticky across waits).
  std::uint32_t issued_mask() const { return issued_mask_; }

  OpCounters& counters() { return *c_; }

  /// Attaches the invariant audit every accepted transfer reports into
  /// (cellcheck tier 2); nullptr detaches.
  void attach_audit(InvariantAudit* audit) { audit_ = audit; }

  /// Attaches a trace staging log (DESIGN.md §11): accepted transfers and
  /// tag waits are recorded at tag-group granularity for the machine to
  /// time-stamp after the stage composes.  nullptr (the default) detaches;
  /// recording never touches the op counters, so timing is unaffected.
  void attach_trace(DmaTraceLog* log) { trace_ = log; }

 private:
  /// One in-flight transfer's Local Store range.
  struct Pending {
    std::uintptr_t lo;
    std::uintptr_t hi;  ///< One past the end.
    unsigned tag;
    bool is_get;
  };

  void validate(const void* a, const void* b, std::size_t bytes,
                bool& efficient) const;
  /// Transfer bodies shared by the sync and async entry points (the sync
  /// entry points additionally record a kSync trace op).
  void get_impl(void* ls_dst, const void* main_src, std::size_t bytes);
  void put_impl(const void* ls_src, void* main_dst, std::size_t bytes);
  void issue_async(void* ls, std::size_t bytes, unsigned tag, bool is_get,
                   bool fenced);
  void retire_tags(std::uint32_t mask, const char* wait_kind);
  void report_hazard(TagHazard kind, const std::string& detail);
  OpCounters* c_;
  InvariantAudit* audit_ = nullptr;
  DmaTraceLog* trace_ = nullptr;
  std::vector<Pending> pending_;
  std::uint32_t pending_mask_ = 0;
  std::uint32_t issued_mask_ = 0;
};

}  // namespace cj2k::cell
