// MFC DMA model.  Enforces the Cell's transfer rules (size/alignment) and
// records traffic for the bandwidth model.  The paper's decomposition
// scheme exists precisely to make every transfer land on the "efficient"
// path here: cache-line aligned on both sides, size a multiple of the line.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cell/counters.hpp"

namespace cj2k::cell {

class InvariantAudit;

class DmaEngine {
 public:
  /// Largest single MFC transfer.
  static constexpr std::size_t kMaxTransfer = 16 * 1024;

  explicit DmaEngine(OpCounters& c) : c_(&c) {}

  /// Main memory -> Local Store.  Throws CellHardwareError on transfers the
  /// MFC would reject (size not in {1,2,4,8,16k·n}, mismatched alignment).
  void get(void* ls_dst, const void* main_src, std::size_t bytes);

  /// Local Store -> main memory.
  void put(const void* ls_src, void* main_dst, std::size_t bytes);

  /// Convenience: transfer of arbitrary size, split into <=16 KB pieces
  /// (what a DMA list would do).
  void get_large(void* ls_dst, const void* main_src, std::size_t bytes);
  void put_large(const void* ls_src, void* main_dst, std::size_t bytes);

  OpCounters& counters() { return *c_; }

  /// Attaches the invariant audit every accepted transfer reports into
  /// (cellcheck tier 2); nullptr detaches.
  void attach_audit(InvariantAudit* audit) { audit_ = audit; }

 private:
  void validate(const void* a, const void* b, std::size_t bytes,
                bool& efficient) const;
  OpCounters* c_;
  InvariantAudit* audit_ = nullptr;
};

}  // namespace cj2k::cell
