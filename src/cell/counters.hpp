// Operation counters: the contract between the functional kernels and the
// timing model.  Kernels (SIMD ops, DMA transfers, Tier-1 symbols) increment
// these as a side effect of doing the real work, so the timing inputs can
// never drift from the computation actually performed (DESIGN.md §5).
#pragma once

#include <cstdint>

namespace cj2k::cell {

struct OpCounters {
  // 128-bit SIMD ops (4 lanes each).
  std::uint64_t v_load = 0;
  std::uint64_t v_store = 0;
  std::uint64_t v_add = 0;        ///< add/sub, word or float.
  std::uint64_t v_mul_f = 0;      ///< single-precision multiply (fm / fma).
  std::uint64_t v_mul_i_emul = 0; ///< 4-byte int multiply — EMULATED on SPE
                                  ///< via mpyh+mpyh+mpyu+a (Table 1).
  std::uint64_t v_shift = 0;
  std::uint64_t v_cmp_sel = 0;    ///< compare/select (branch-free codepaths).
  std::uint64_t v_shuffle = 0;    ///< permutes (odd pipe).
  std::uint64_t v_cvt = 0;        ///< int<->float conversions.

  // Scalar ops (tails, control).
  std::uint64_t s_int = 0;
  std::uint64_t s_float = 0;
  std::uint64_t s_branch = 0;     ///< Data-dependent (hard to predict).

  // Tier-1 instrumentation: MQ decisions coded.
  std::uint64_t t1_symbols = 0;

  // DMA traffic.
  std::uint64_t dma_bytes_in = 0;
  std::uint64_t dma_bytes_out = 0;
  std::uint64_t dma_transfers = 0;
  std::uint64_t dma_unaligned = 0;  ///< Not cache-line aligned/sized.
  // Tag-grouped (asynchronous) subset of the traffic above: transfers a
  // double-buffered kernel issued without blocking, i.e. the share the
  // timing model may overlap with compute.  Synchronous get/put traffic is
  // dma_bytes() - dma_bytes_tagged.
  std::uint64_t dma_tagged_transfers = 0;
  std::uint64_t dma_bytes_tagged = 0;

  void add(const OpCounters& o) {
    v_load += o.v_load;
    v_store += o.v_store;
    v_add += o.v_add;
    v_mul_f += o.v_mul_f;
    v_mul_i_emul += o.v_mul_i_emul;
    v_shift += o.v_shift;
    v_cmp_sel += o.v_cmp_sel;
    v_shuffle += o.v_shuffle;
    v_cvt += o.v_cvt;
    s_int += o.s_int;
    s_float += o.s_float;
    s_branch += o.s_branch;
    t1_symbols += o.t1_symbols;
    dma_bytes_in += o.dma_bytes_in;
    dma_bytes_out += o.dma_bytes_out;
    dma_transfers += o.dma_transfers;
    dma_unaligned += o.dma_unaligned;
    dma_tagged_transfers += o.dma_tagged_transfers;
    dma_bytes_tagged += o.dma_bytes_tagged;
  }

  void reset() { *this = OpCounters{}; }

  std::uint64_t dma_bytes() const { return dma_bytes_in + dma_bytes_out; }
};

}  // namespace cj2k::cell
