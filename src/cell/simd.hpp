// Instrumented 128-bit SIMD layer — the SPE "vector ISA" the kernels are
// written against.  Every operation performs the real 4-lane arithmetic on
// the host AND increments the owning SPE's OpCounters, which the cost model
// later converts into cycles.  Loads/stores require quad-word alignment,
// exactly like the hardware.
#pragma once

#include <cstdint>
#include <cstring>

#include "cell/counters.hpp"
#include "cell/vec.hpp"
#include "common/align.hpp"
#include "common/error.hpp"

namespace cj2k::cell {

/// Per-SPE SIMD handle.  Cheap to copy; references the SPE's counters.
class Simd {
 public:
  explicit Simd(OpCounters& c) : c_(&c) {}

  // --- Loads / stores (odd pipe) ------------------------------------------
  VecF4 load(const float* p) {
    check_align(p);
    ++c_->v_load;
    VecF4 r;
    std::memcpy(r.lane, p, sizeof(r.lane));
    return r;
  }
  VecI4 load(const std::int32_t* p) {
    check_align(p);
    ++c_->v_load;
    VecI4 r;
    std::memcpy(r.lane, p, sizeof(r.lane));
    return r;
  }
  void store(float* p, VecF4 v) {
    check_align(p);
    ++c_->v_store;
    std::memcpy(p, v.lane, sizeof(v.lane));
  }
  void store(std::int32_t* p, VecI4 v) {
    check_align(p);
    ++c_->v_store;
    std::memcpy(p, v.lane, sizeof(v.lane));
  }

  // --- Float arithmetic (even pipe) ---------------------------------------
  VecF4 add(VecF4 a, VecF4 b) {
    ++c_->v_add;
    VecF4 r;
    for (int i = 0; i < 4; ++i) r.lane[i] = a.lane[i] + b.lane[i];
    return r;
  }
  VecF4 sub(VecF4 a, VecF4 b) {
    ++c_->v_add;
    VecF4 r;
    for (int i = 0; i < 4; ++i) r.lane[i] = a.lane[i] - b.lane[i];
    return r;
  }
  VecF4 mul(VecF4 a, VecF4 b) {
    ++c_->v_mul_f;
    VecF4 r;
    for (int i = 0; i < 4; ++i) r.lane[i] = a.lane[i] * b.lane[i];
    return r;
  }
  /// Fused multiply-add a*b + c — one fm-class instruction on the SPE.
  VecF4 madd(VecF4 a, VecF4 b, VecF4 c) {
    ++c_->v_mul_f;
    VecF4 r;
    for (int i = 0; i < 4; ++i) r.lane[i] = a.lane[i] * b.lane[i] + c.lane[i];
    return r;
  }
  VecF4 splat(float v) {
    ++c_->v_shuffle;
    return VecF4{{v, v, v, v}};
  }

  // --- Integer arithmetic --------------------------------------------------
  VecI4 add(VecI4 a, VecI4 b) {
    ++c_->v_add;
    VecI4 r;
    for (int i = 0; i < 4; ++i) r.lane[i] = a.lane[i] + b.lane[i];
    return r;
  }
  VecI4 sub(VecI4 a, VecI4 b) {
    ++c_->v_add;
    VecI4 r;
    for (int i = 0; i < 4; ++i) r.lane[i] = a.lane[i] - b.lane[i];
    return r;
  }
  /// Arithmetic shift right (word).
  VecI4 sra(VecI4 a, int s) {
    ++c_->v_shift;
    VecI4 r;
    for (int i = 0; i < 4; ++i) r.lane[i] = a.lane[i] >> s;
    return r;
  }
  VecI4 sll(VecI4 a, int s) {
    ++c_->v_shift;
    VecI4 r;
    for (int i = 0; i < 4; ++i) r.lane[i] = a.lane[i] << s;
    return r;
  }
  VecI4 splat(std::int32_t v) {
    ++c_->v_shuffle;
    return VecI4{{v, v, v, v}};
  }
  /// 32-bit integer multiply: the SPE has no 4-byte multiply, so this is
  /// the mpyh/mpyh/mpyu/a emulation sequence — counted as such.
  VecI4 mul_emulated(VecI4 a, VecI4 b) {
    ++c_->v_mul_i_emul;
    VecI4 r;
    for (int i = 0; i < 4; ++i) {
      r.lane[i] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(a.lane[i]) *
          static_cast<std::uint32_t>(b.lane[i]));
    }
    return r;
  }
  /// Q13 fixed-point multiply (widening) — also emulated-integer class.
  VecI4 mul_fix_q13(VecI4 a, VecI4 b) {
    ++c_->v_mul_i_emul;
    ++c_->v_shift;
    VecI4 r;
    for (int i = 0; i < 4; ++i) {
      r.lane[i] = static_cast<std::int32_t>(
          (static_cast<std::int64_t>(a.lane[i]) * b.lane[i]) >> 13);
    }
    return r;
  }

  // --- Conversions / select -------------------------------------------------
  VecF4 to_float(VecI4 a) {
    ++c_->v_cvt;
    VecF4 r;
    for (int i = 0; i < 4; ++i) r.lane[i] = static_cast<float>(a.lane[i]);
    return r;
  }
  VecI4 to_int_trunc(VecF4 a) {
    ++c_->v_cvt;
    VecI4 r;
    for (int i = 0; i < 4; ++i) r.lane[i] = static_cast<std::int32_t>(a.lane[i]);
    return r;
  }
  /// Branch-free select: mask lanes from a where cond lane < 0 else b.
  VecI4 select_neg(VecI4 cond, VecI4 a, VecI4 b) {
    ++c_->v_cmp_sel;
    VecI4 r;
    for (int i = 0; i < 4; ++i) r.lane[i] = cond.lane[i] < 0 ? a.lane[i] : b.lane[i];
    return r;
  }
  VecF4 abs(VecF4 a) {
    ++c_->v_cmp_sel;
    VecF4 r;
    for (int i = 0; i < 4; ++i) r.lane[i] = a.lane[i] < 0 ? -a.lane[i] : a.lane[i];
    return r;
  }

  /// Loads 4 consecutive elements from an address that is only 4-byte
  /// aligned — on the SPU this is two quad-word loads plus a shuffle, and
  /// is charged as such.  Used for the x[i±1] stencil operands.
  VecF4 load_shifted(const float* p) {
    c_->v_load += 2;
    ++c_->v_shuffle;
    VecF4 r;
    std::memcpy(r.lane, p, sizeof(r.lane));
    return r;
  }
  VecI4 load_shifted(const std::int32_t* p) {
    c_->v_load += 2;
    ++c_->v_shuffle;
    VecI4 r;
    std::memcpy(r.lane, p, sizeof(r.lane));
    return r;
  }

  OpCounters& counters() { return *c_; }

 private:
  static void check_align(const void* p) {
    if (!is_aligned(p, kQuadWordBytes)) {
      throw CellHardwareError("SIMD load/store requires 16-byte alignment");
    }
  }
  OpCounters* c_;
};

}  // namespace cj2k::cell
