// Event-level pipeline tracing (DESIGN.md §11).
//
// The machine model composes *aggregate* stage timings from op counters;
// this subsystem reconstructs the event-level timeline behind those
// aggregates: per-SPE kernel execution spans, tagged-DMA issue/wait flows
// with the hidden-vs-exposed latency split, PPE serial sections, work-queue
// block spans and dequeue gaps, completion-channel stalls, and tile-wave
// boundaries.  Events land on per-worker bounded rings (single writer per
// track, no locks — the recording path is the worker's own host thread or
// the post-compose finalizer on the driver thread) and export as Chrome
// trace-event JSON (chrome://tracing / Perfetto): one track per SPE/PPE
// thread plus a driver track, flow arrows linking each DMA tag-group's
// issue to the wait that retired it.
//
// Timestamps are *simulated* seconds on the recorder's virtual clock, so a
// trace is deterministic across runs and host machines.  Within one stage,
// a worker's DMA ops are placed in program order at evenly spaced offsets
// across that worker's busy span — a deterministic reconstruction (the
// counter model has no intra-stage timestamps), documented as such in the
// schema.
//
// Tracing is strictly opt-in: a null recorder pointer is the zero-overhead
// default, and recording never touches the op counters, so simulated time
// and encoded bytes are bit-identical with tracing on or off.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace cj2k::cell {

class MetricsRegistry;

/// Tracing knobs carried by PipelineOptions (off by default).
struct TraceConfig {
  bool enabled = false;
  /// Per-track event capacity; the oldest events are overwritten when a
  /// track overflows (dropped counts are reported in the export).
  std::size_t ring_capacity = 1 << 16;
};

/// One trace event.  `args` is a preformatted JSON object body
/// ("\"k\":1,\"s\":\"x\"", no braces) appended verbatim to the exported
/// event's args object; empty means no args.
struct TraceEvent {
  enum class Phase : std::uint8_t {
    kSpan,       ///< Complete slice ("X"): ts + dur.
    kInstant,    ///< Instant ("i") at ts.
    kFlowBegin,  ///< Flow start ("s") at ts, arrow drawn to the matching end.
    kFlowEnd,    ///< Flow end ("f") at ts.
  };
  Phase phase = Phase::kInstant;
  std::uint16_t track = 0;
  const char* cat = "misc";
  std::string name;
  double ts = 0;        ///< Simulated seconds.
  double dur = 0;       ///< Simulated seconds (spans only).
  std::uint64_t flow_id = 0;
  std::string args;
};

/// Bounded single-writer ring of trace events.  Overflow overwrites the
/// oldest event (classic flight-recorder semantics) and counts the drop.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : capacity_(capacity) {}

  void push(TraceEvent e);

  /// Events in record order (oldest surviving first).
  std::vector<TraceEvent> ordered() const;

  std::size_t size() const { return events_.size(); }
  std::uint64_t dropped() const { return dropped_; }

 private:
  std::vector<TraceEvent> events_;
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< Next overwrite position once saturated.
  std::uint64_t dropped_ = 0;
};

/// Staging log a DmaEngine writes tagged/synchronous transfer activity
/// into while a kernel runs (one log per SPE, written only by that SPE's
/// host thread).  Issues on one tag coalesce into a single *tag group*
/// record until a wait retires the tag, which keeps the log (and the
/// exported flow arrows) at tag-group granularity rather than
/// per-transfer — the double-buffer idiom emits two groups per wait, not
/// thousands of events.  The machine time-stamps and drains the log after
/// the stage's timing is composed.
class DmaTraceLog {
 public:
  static constexpr unsigned kNumTags = 32;

  struct Op {
    enum class Kind : std::uint8_t {
      kIssueGroup,  ///< First issue on a tag since it was last retired.
      kSync,        ///< Run of synchronous (blocking) transfers.
      kWait,        ///< Wait that retired one or more tag groups.
    };
    Kind kind = Kind::kSync;
    unsigned tag = 0;
    bool is_get = false;  ///< Direction of the run's first transfer.
    bool fenced = false;
    std::uint32_t transfers = 0;
    std::uint64_t bytes = 0;
    const char* wait_kind = nullptr;        ///< kWait only.
    std::vector<std::uint32_t> retired;     ///< kWait: op indices closed.
  };

  void on_issue(unsigned tag, std::size_t bytes, bool is_get, bool fenced);
  void on_sync(std::size_t bytes, bool is_get);
  /// `retired_mask` bits name tags whose in-flight groups this wait
  /// completes; `kind` is the engine call ("wait_tag", "wait_all", ...).
  void on_wait(std::uint32_t retired_mask, const char* kind);
  /// Tag-state reset (kernel epilogue / stage prologue): closes any still
  /// open groups so every issue group pairs with exactly one wait.
  void on_reset();
  void clear();

  const std::vector<Op>& ops() const { return ops_; }

 private:
  std::vector<Op> ops_;
  /// Per-tag index of the open kIssueGroup op (-1 = none in flight).
  std::array<std::int32_t, kNumTags> open_{[] {
    std::array<std::int32_t, kNumTags> a{};
    a.fill(-1);
    return a;
  }()};
  std::int32_t open_sync_ = -1;  ///< Index of the trailing kSync run.
};

/// The per-run trace: one ring per track (driver + SPEs + PPE threads),
/// the virtual clock the pipeline advances stage by stage, and the
/// Chrome-JSON exporter.  Track writers never share a ring: SPE-thread
/// writes go to that SPE's DmaTraceLog during the kernel, and all ring
/// pushes happen on the driver thread after the stage joins.
class TraceRecorder {
 public:
  TraceRecorder(int num_spes, int num_ppe_threads,
                std::size_t ring_capacity = TraceConfig{}.ring_capacity);

  int num_spes() const { return num_spes_; }
  int num_ppe_tracks() const { return num_ppe_tracks_; }

  // --- Track layout: 0 = driver ("pipeline"), 1..S = SPEs, then PPEs.
  // At least one PPE track always exists (the control PPE runs serial
  // sections even when no PPE thread joins Tier-1).
  int driver_track() const { return 0; }
  int spe_track(int spe) const { return 1 + spe; }
  int ppe_track(int t) const { return 1 + num_spes_ + t; }
  int num_tracks() const { return 1 + num_spes_ + num_ppe_tracks_; }

  // --- Virtual clock (simulated seconds since encode start).
  double clock() const { return clock_; }
  void set_clock(double t) { clock_ = t; }
  void advance_clock(double dt) { clock_ += dt; }

  // --- Emission (driver thread only; see class comment).
  void emit_span(int track, std::string name, const char* cat, double ts,
                 double dur, std::string args = {});
  void emit_instant(int track, std::string name, const char* cat, double ts,
                    std::string args = {});
  void emit_flow_begin(int track, const char* name, const char* cat,
                       double ts, std::uint64_t id);
  void emit_flow_end(int track, const char* name, const char* cat, double ts,
                     std::uint64_t id);

  /// The staging log attached to SPE `spe`'s DmaEngine while tracing.
  DmaTraceLog& dma_log(int spe) { return dma_logs_[static_cast<std::size_t>(spe)]; }

  /// Time-stamps and drains SPE `spe`'s DMA log across the busy span
  /// [t0, t0+busy]: ops are placed in program order at evenly spaced
  /// offsets, issue groups open flows, waits close them.
  void flush_dma_log(int spe, double t0, double busy);

  std::uint64_t total_events() const;
  std::uint64_t dropped_events() const;

  /// Chrome trace-event JSON: {"traceEvents":[...]} with one metadata
  /// record per track, ts/dur in microseconds, one event object per line
  /// (deterministic byte-for-byte for a deterministic event stream).
  /// `metrics`, when given, is embedded as a top-level "cj2k_metrics"
  /// object (ignored by trace viewers).
  void write_chrome_json(std::ostream& os,
                         const MetricsRegistry* metrics = nullptr) const;

 private:
  std::uint64_t flow_id(int spe, std::uint32_t op_index) const;

  int num_spes_;
  int num_ppe_tracks_;
  double clock_ = 0;
  std::vector<TraceRing> rings_;
  std::vector<DmaTraceLog> dma_logs_;
};

/// JSON string escaping for event names (quotes, backslashes, control
/// chars).  Exposed for the exporter's tests.
std::string trace_json_escape(const std::string& s);

}  // namespace cj2k::cell
