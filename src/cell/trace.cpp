#include "cell/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "cell/metrics.hpp"

namespace cj2k::cell {

// ---------------------------------------------------------------------------
// TraceRing

void TraceRing::push(TraceEvent e) {
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (events_.size() < capacity_) {
    events_.push_back(std::move(e));
    return;
  }
  events_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRing::ordered() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// DmaTraceLog

void DmaTraceLog::on_issue(unsigned tag, std::size_t bytes, bool is_get,
                           bool fenced) {
  open_sync_ = -1;
  if (tag >= kNumTags) return;  // Engine rejects these; nothing to record.
  const std::int32_t open = open_[tag];
  if (open >= 0) {
    Op& op = ops_[static_cast<std::size_t>(open)];
    op.transfers += 1;
    op.bytes += bytes;
    op.fenced = op.fenced || fenced;
    return;
  }
  Op op;
  op.kind = Op::Kind::kIssueGroup;
  op.tag = tag;
  op.is_get = is_get;
  op.fenced = fenced;
  op.transfers = 1;
  op.bytes = bytes;
  open_[tag] = static_cast<std::int32_t>(ops_.size());
  ops_.push_back(std::move(op));
}

void DmaTraceLog::on_sync(std::size_t bytes, bool is_get) {
  // Coalesce back-to-back synchronous transfers into one run so strided
  // row loops stay one record, not one per row.
  if (open_sync_ >= 0 &&
      ops_[static_cast<std::size_t>(open_sync_)].is_get == is_get) {
    Op& op = ops_[static_cast<std::size_t>(open_sync_)];
    op.transfers += 1;
    op.bytes += bytes;
    return;
  }
  Op op;
  op.kind = Op::Kind::kSync;
  op.is_get = is_get;
  op.transfers = 1;
  op.bytes = bytes;
  open_sync_ = static_cast<std::int32_t>(ops_.size());
  ops_.push_back(std::move(op));
}

void DmaTraceLog::on_wait(std::uint32_t retired_mask, const char* kind) {
  open_sync_ = -1;
  Op op;
  op.kind = Op::Kind::kWait;
  op.wait_kind = kind;
  for (unsigned tag = 0; tag < kNumTags; ++tag) {
    if (!(retired_mask & (1u << tag))) continue;
    if (open_[tag] < 0) continue;  // Wait on an already-complete tag.
    op.retired.push_back(static_cast<std::uint32_t>(open_[tag]));
    op.bytes += ops_[static_cast<std::size_t>(open_[tag])].bytes;
    op.transfers += ops_[static_cast<std::size_t>(open_[tag])].transfers;
    open_[tag] = -1;
  }
  if (op.retired.empty()) return;  // No in-flight group completed: no event.
  ops_.push_back(std::move(op));
}

void DmaTraceLog::on_reset() {
  std::uint32_t live = 0;
  for (unsigned tag = 0; tag < kNumTags; ++tag) {
    if (open_[tag] >= 0) live |= 1u << tag;
  }
  if (live != 0) on_wait(live, "exit");
}

void DmaTraceLog::clear() {
  ops_.clear();
  open_.fill(-1);
  open_sync_ = -1;
}

// ---------------------------------------------------------------------------
// TraceRecorder

TraceRecorder::TraceRecorder(int num_spes, int num_ppe_threads,
                             std::size_t ring_capacity)
    : num_spes_(num_spes),
      // The control PPE always has a track: serial sections run on it even
      // in configurations with no PPE worker threads.
      num_ppe_tracks_(std::max(1, num_ppe_threads)) {
  rings_.reserve(static_cast<std::size_t>(num_tracks()));
  for (int t = 0; t < num_tracks(); ++t) rings_.emplace_back(ring_capacity);
  dma_logs_.resize(static_cast<std::size_t>(std::max(0, num_spes)));
}

void TraceRecorder::emit_span(int track, std::string name, const char* cat,
                              double ts, double dur, std::string args) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kSpan;
  e.track = static_cast<std::uint16_t>(track);
  e.cat = cat;
  e.name = std::move(name);
  e.ts = ts;
  e.dur = dur;
  e.args = std::move(args);
  rings_[static_cast<std::size_t>(track)].push(std::move(e));
}

void TraceRecorder::emit_instant(int track, std::string name, const char* cat,
                                 double ts, std::string args) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kInstant;
  e.track = static_cast<std::uint16_t>(track);
  e.cat = cat;
  e.name = std::move(name);
  e.ts = ts;
  e.args = std::move(args);
  rings_[static_cast<std::size_t>(track)].push(std::move(e));
}

void TraceRecorder::emit_flow_begin(int track, const char* name,
                                    const char* cat, double ts,
                                    std::uint64_t id) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kFlowBegin;
  e.track = static_cast<std::uint16_t>(track);
  e.cat = cat;
  e.name = name;
  e.ts = ts;
  e.flow_id = id;
  rings_[static_cast<std::size_t>(track)].push(std::move(e));
}

void TraceRecorder::emit_flow_end(int track, const char* name, const char* cat,
                                  double ts, std::uint64_t id) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kFlowEnd;
  e.track = static_cast<std::uint16_t>(track);
  e.cat = cat;
  e.name = name;
  e.ts = ts;
  e.flow_id = id;
  rings_[static_cast<std::size_t>(track)].push(std::move(e));
}

std::uint64_t TraceRecorder::flow_id(int spe, std::uint32_t op_index) const {
  // Per-SPE sequence, no shared counter: ids are identical run to run no
  // matter how the host threads interleave.
  return (static_cast<std::uint64_t>(spe + 1) << 40) | op_index;
}

void TraceRecorder::flush_dma_log(int spe, double t0, double busy) {
  DmaTraceLog& log = dma_log(spe);
  const std::vector<DmaTraceLog::Op>& ops = log.ops();
  if (ops.empty()) return;
  const int track = spe_track(spe);
  const double step = busy / static_cast<double>(ops.size() + 1);
  char buf[160];
  for (std::size_t k = 0; k < ops.size(); ++k) {
    const DmaTraceLog::Op& op = ops[k];
    // Program order is real; the offsets are the documented deterministic
    // reconstruction (the counter model keeps no intra-stage timestamps).
    const double ts = t0 + step * static_cast<double>(k + 1);
    switch (op.kind) {
      case DmaTraceLog::Op::Kind::kIssueGroup: {
        emit_flow_begin(track, "dma-tag", "dma", ts,
                        flow_id(spe, static_cast<std::uint32_t>(k)));
        std::snprintf(buf, sizeof buf, "tag %u", op.tag);
        std::string name = op.is_get ? "dma issue get " : "dma issue put ";
        name += buf;
        std::snprintf(buf, sizeof buf,
                      "\"tag\":%u,\"transfers\":%u,\"bytes\":%llu,"
                      "\"fenced\":%s",
                      op.tag, op.transfers,
                      static_cast<unsigned long long>(op.bytes),
                      op.fenced ? "true" : "false");
        emit_instant(track, std::move(name), "dma", ts, buf);
        break;
      }
      case DmaTraceLog::Op::Kind::kSync: {
        std::snprintf(buf, sizeof buf, "\"transfers\":%u,\"bytes\":%llu",
                      op.transfers,
                      static_cast<unsigned long long>(op.bytes));
        emit_instant(track,
                     op.is_get ? "dma sync get" : "dma sync put", "dma", ts,
                     buf);
        break;
      }
      case DmaTraceLog::Op::Kind::kWait: {
        for (std::uint32_t idx : op.retired) {
          emit_flow_end(track, "dma-tag", "dma", ts, flow_id(spe, idx));
        }
        std::snprintf(buf, sizeof buf,
                      "\"retired_groups\":%zu,\"transfers\":%u,\"bytes\":%llu",
                      op.retired.size(), op.transfers,
                      static_cast<unsigned long long>(op.bytes));
        std::string name = "dma ";
        name += op.wait_kind ? op.wait_kind : "wait";
        emit_instant(track, std::move(name), "dma", ts, buf);
        break;
      }
    }
  }
  log.clear();
}

std::uint64_t TraceRecorder::total_events() const {
  std::uint64_t n = 0;
  for (const TraceRing& r : rings_) n += r.size();
  return n;
}

std::uint64_t TraceRecorder::dropped_events() const {
  std::uint64_t n = 0;
  for (const TraceRing& r : rings_) n += r.dropped();
  return n;
}

std::string trace_json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string track_name(const TraceRecorder& rec, int track) {
  if (track == rec.driver_track()) return "pipeline";
  char buf[32];
  if (track <= rec.num_spes()) {
    std::snprintf(buf, sizeof buf, "SPE %d", track - 1);
  } else {
    std::snprintf(buf, sizeof buf, "PPE %d", track - 1 - rec.num_spes());
  }
  return buf;
}

}  // namespace

void TraceRecorder::write_chrome_json(std::ostream& os,
                                      const MetricsRegistry* metrics) const {
  os << "{\"displayTimeUnit\":\"ms\",\n";
  if (metrics != nullptr) {
    os << "\"cj2k_metrics\":" << metrics->to_json() << ",\n";
  }
  os << "\"cj2k_dropped_events\":" << dropped_events() << ",\n";
  os << "\"traceEvents\":[\n";
  char buf[128];
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  // Track metadata: names + stable top-to-bottom sort (driver, SPEs, PPEs).
  for (int t = 0; t < num_tracks(); ++t) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << t
       << ",\"ts\":0,\"name\":\"thread_name\",\"args\":{\"name\":\""
       << track_name(*this, t) << "\"}}";
    sep();
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << t
       << ",\"ts\":0,\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":"
       << t << "}}";
  }
  // Events, track by track (each ring is already in record order; Chrome
  // and Perfetto sort by ts, so cross-track interleaving is irrelevant,
  // and a fixed emission order keeps the file byte-deterministic).
  for (int t = 0; t < num_tracks(); ++t) {
    for (const TraceEvent& e : rings_[static_cast<std::size_t>(t)].ordered()) {
      sep();
      // Simulated seconds -> trace microseconds.
      std::snprintf(buf, sizeof buf, "\"ts\":%.4f", e.ts * 1e6);
      os << "{\"pid\":0,\"tid\":" << t << ',' << buf << ",\"name\":\""
         << trace_json_escape(e.name) << "\",\"cat\":\"" << e.cat << "\"";
      switch (e.phase) {
        case TraceEvent::Phase::kSpan:
          std::snprintf(buf, sizeof buf, ",\"ph\":\"X\",\"dur\":%.4f",
                        e.dur * 1e6);
          os << buf;
          break;
        case TraceEvent::Phase::kInstant:
          os << ",\"ph\":\"i\",\"s\":\"t\"";
          break;
        case TraceEvent::Phase::kFlowBegin:
          os << ",\"ph\":\"s\",\"id\":" << e.flow_id;
          break;
        case TraceEvent::Phase::kFlowEnd:
          os << ",\"ph\":\"f\",\"bp\":\"e\",\"id\":" << e.flow_id;
          break;
      }
      if (!e.args.empty()) os << ",\"args\":{" << e.args << '}';
      os << '}';
    }
  }
  os << "\n]}\n";
}

}  // namespace cj2k::cell
