// The Cell/B.E. machine model: a set of SPE contexts (Local Store + DMA +
// SIMD + counters), PPE thread counters, and the timing composition that
// turns per-worker op counts into a simulated stage time.
//
// Execution model: stage kernels are real C++ run on host threads (so the
// work queue and chunk decomposition are genuinely concurrent); *simulated*
// time is computed from the counters, so it is deterministic and
// independent of the host machine.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cell/audit.hpp"
#include "cell/cost_model.hpp"
#include "cell/dma.hpp"
#include "cell/local_store.hpp"
#include "cell/simd.hpp"

namespace cj2k::cell {

class TraceRecorder;

/// One SPE's private state.
struct SpeContext {
  SpeContext() : dma(counters), simd(counters) {}
  LocalStore ls;
  OpCounters counters;
  DmaEngine dma;
  Simd simd;
};

struct MachineConfig {
  int num_spes = 8;
  int num_ppe_threads = 1;  ///< PPE hardware threads doing stage work.
  int chips = 1;            ///< QS20 blade = 2 (bandwidth scales).
  CostParams cost;          ///< Clock and per-op costs.
};

/// Where a stage's composed `seconds` went, pool-averaged so the
/// components always sum to `seconds` (DESIGN.md §11).  `busy` is the
/// productive share; the other four buckets are the stall-attribution
/// taxonomy: exposed DMA latency / bandwidth ceiling (`dma_wait`), worker
/// idle with nothing to dequeue — including static-split load imbalance —
/// (`queue_empty`), waiting on serial PPE-side work (`ppe_serial`), and a
/// consumer blocked on the completion channel (`channel_stall`).
struct StallBreakdown {
  double busy = 0;
  double dma_wait = 0;
  double queue_empty = 0;
  double ppe_serial = 0;
  double channel_stall = 0;

  double sum() const {
    return busy + dma_wait + queue_empty + ppe_serial + channel_stall;
  }

  StallBreakdown& operator+=(const StallBreakdown& o) {
    busy += o.busy;
    dma_wait += o.dma_wait;
    queue_empty += o.queue_empty;
    ppe_serial += o.ppe_serial;
    channel_stall += o.channel_stall;
    return *this;
  }
};

/// Simulated timing of one pipeline stage.
struct StageTiming {
  std::string name;
  double spe_compute = 0;   ///< Max per-SPE compute seconds.
  double spe_dma = 0;       ///< Max per-SPE private DMA seconds.
  double dma_aggregate = 0; ///< Total traffic over chip bandwidth.
  double ppe = 0;           ///< Max per-PPE-thread compute seconds.
  double seconds = 0;       ///< Composed stage time.
  /// Seconds hidden by overlapping this stage with neighbouring work
  /// (serial-sum of the overlapped pieces minus the overlapped span).
  /// Zero for phase-ordered stages; `seconds` already has it subtracted.
  double overlap_saved = 0;
  /// Seconds hidden *within* this stage by double-buffered tagged DMA
  /// (what the stage would have cost with synchronous transfers, minus
  /// `seconds`).  Zero when the stage issued no tagged transfers.
  double dma_overlap_saved = 0;
  std::uint64_t dma_bytes = 0;
  /// Stall attribution; components sum to `seconds` (always filled — the
  /// breakdown is a handful of divisions, not a tracing feature).
  StallBreakdown stall;

  StageTiming& operator+=(const StageTiming& o) {
    spe_compute += o.spe_compute;
    spe_dma += o.spe_dma;
    dma_aggregate += o.dma_aggregate;
    ppe += o.ppe;
    seconds += o.seconds;
    overlap_saved += o.overlap_saved;
    dma_overlap_saved += o.dma_overlap_saved;
    dma_bytes += o.dma_bytes;
    stall += o.stall;
    return *this;
  }
};

class Machine {
 public:
  explicit Machine(const MachineConfig& cfg);

  const MachineConfig& config() const { return cfg_; }
  const CostModel& model() const { return model_; }
  int num_spes() const { return cfg_.num_spes; }
  int num_ppe_threads() const { return cfg_.num_ppe_threads; }
  SpeContext& spe(int i) { return *spes_.at(static_cast<std::size_t>(i)); }

  /// Runs `spe_work(i, ctx)` for every SPE on host threads, plus an
  /// optional PPE-side worker, then composes the stage timing from the
  /// counters (which are reset on entry, along with each DmaEngine's tag
  /// state; pending tags at kernel return are a pending-at-exit hazard).
  /// With `overlap_dma` (the default) the *tagged* share of each SPE's DMA
  /// overlaps with compute — overlap credit is earned by issuing
  /// asynchronous transfers, synchronous traffic always serializes.
  /// Without it everything serializes (the Muta baseline condition).
  StageTiming run_data_parallel(
      const std::string& name,
      const std::function<void(int, SpeContext&)>& spe_work,
      const std::function<void(OpCounters&)>& ppe_work = nullptr,
      bool overlap_dma = true);

  /// Pure timing composition from externally-managed counters (used by the
  /// Tier-1 virtual-time work-queue stage and the baseline models).
  StageTiming compose(const std::string& name,
                      const std::vector<OpCounters>& spe_counters,
                      const std::vector<OpCounters>& ppe_counters,
                      bool overlap_dma = true) const;

  /// Chip-aggregate memory bandwidth (scales with the number of chips).
  double total_mem_bw() const {
    return cfg_.cost.chip_mem_bw * static_cast<double>(cfg_.chips);
  }

  /// Attaches an invariant audit to every SPE's DmaEngine and LocalStore
  /// (cellcheck tier 2); run_data_parallel tags events with the stage name.
  /// Pass nullptr to detach.
  void attach_audit(InvariantAudit* audit);

  /// Attaches a trace recorder (DESIGN.md §11): every run_data_parallel
  /// stage then emits per-SPE kernel spans with the hidden-vs-exposed DMA
  /// split, tag-group issue→wait flow events, idle/stall spans, and a PPE
  /// span, all on the recorder's virtual clock.  Pass nullptr to detach
  /// (the zero-overhead default).  Timing composition never reads the
  /// recorder, so simulated seconds are identical with tracing on or off.
  void attach_trace(TraceRecorder* trace);
  TraceRecorder* trace() const { return trace_; }

 private:
  void emit_stage_trace(const StageTiming& t,
                        const std::vector<OpCounters>& spe_counters,
                        const OpCounters& ppe_counters, bool overlap_dma,
                        bool had_ppe_work);

  MachineConfig cfg_;
  CostModel model_;
  std::vector<std::unique_ptr<SpeContext>> spes_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace cj2k::cell
