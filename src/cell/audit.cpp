#include "cell/audit.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace cj2k::cell {

namespace {

constexpr const char* kUntagged = "(untagged)";

thread_local const char* t_site = nullptr;
thread_local int t_tile = -1;
thread_local int t_job = -1;

/// Site key with job and tile provenance folded in ("jobN/tileM/site" when
/// the corresponding scopes are live).
std::string qualified_site(const char* site) {
  const int tile = AuditTileScope::current();
  const int job = AuditJobScope::current();
  if (tile < 0 && job < 0) return site;
  std::string s = site;
  if (tile >= 0) s = "tile" + std::to_string(tile) + "/" + s;
  if (job >= 0) s = "job" + std::to_string(job) + "/" + s;
  return s;
}

}  // namespace

AuditSiteScope::AuditSiteScope(const char* site) : prev_(t_site) {
  t_site = site;
}

AuditSiteScope::~AuditSiteScope() { t_site = prev_; }

const char* AuditSiteScope::current() {
  return t_site != nullptr ? t_site : kUntagged;
}

AuditTileScope::AuditTileScope(int tile) : prev_(t_tile) { t_tile = tile; }

AuditTileScope::~AuditTileScope() { t_tile = prev_; }

int AuditTileScope::current() { return t_tile; }

AuditJobScope::AuditJobScope(int job) : prev_(t_job) { t_job = job; }

AuditJobScope::~AuditJobScope() { t_job = prev_; }

int AuditJobScope::current() { return t_job; }

InvariantAudit::InvariantAudit(const AuditConfig& cfg) : cfg_(cfg) {}

void InvariantAudit::record_dma(std::size_t bytes, bool efficient) {
  const std::string site = qualified_site(AuditSiteScope::current());
  {
    std::lock_guard<std::mutex> lock(mu_);
    SiteAccum& a = sites_[site];
    ++a.dma_transfers;
    a.dma_bytes += bytes;
    if (!efficient) {
      ++a.dma_inefficient;
      a.dma_inefficient_bytes += bytes;
    }
  }
  if (!efficient && cfg_.strict) {
    throw AuditError("inefficient DMA transfer (" + std::to_string(bytes) +
                     " bytes, not cache-line aligned/sized) at site '" +
                     site + "'");
  }
}

void InvariantAudit::record_ls(std::size_t used_now,
                               std::size_t data_capacity) {
  const std::string site = qualified_site(AuditSiteScope::current());
  const std::size_t budget =
      cfg_.ls_budget != 0 ? cfg_.ls_budget : data_capacity;
  const bool over = used_now > budget;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SiteAccum& a = sites_[site];
    if (used_now > a.ls_peak) a.ls_peak = used_now;
    if (over) ++a.ls_over_budget;
  }
  if (over && cfg_.strict) {
    throw AuditError("Local Store over budget at site '" + site +
                     "': " + std::to_string(used_now) + " of " +
                     std::to_string(budget) + " bytes");
  }
}

void InvariantAudit::record_tag_hazard(TagHazard kind,
                                       const std::string& detail) {
  const std::string site = qualified_site(AuditSiteScope::current());
  const char* label = "tag hazard";
  {
    std::lock_guard<std::mutex> lock(mu_);
    SiteAccum& a = sites_[site];
    switch (kind) {
      case TagHazard::kTouchBeforeWait:
        ++a.tag_touch_before_wait;
        label = "touch-before-wait";
        break;
      case TagHazard::kReuseInFlight:
        ++a.tag_reuse_in_flight;
        label = "reuse-in-flight";
        break;
      case TagHazard::kPendingAtExit:
        ++a.tag_pending_at_exit;
        label = "pending-at-exit";
        break;
    }
  }
  if (cfg_.strict) {
    throw AuditError("DMA tag hazard (" + std::string(label) + ") at site '" +
                     site + "': " + detail);
  }
}

AuditReport InvariantAudit::report() const {
  AuditReport r;
  r.enabled = cfg_.enabled;
  r.ls_budget = cfg_.ls_budget;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [site, a] : sites_) {
    AuditSiteReport s;
    s.site = site;
    s.dma_transfers = a.dma_transfers;
    s.dma_bytes = a.dma_bytes;
    s.dma_inefficient = a.dma_inefficient;
    s.dma_inefficient_bytes = a.dma_inefficient_bytes;
    s.ls_peak = a.ls_peak;
    s.ls_over_budget = a.ls_over_budget;
    s.tag_touch_before_wait = a.tag_touch_before_wait;
    s.tag_reuse_in_flight = a.tag_reuse_in_flight;
    s.tag_pending_at_exit = a.tag_pending_at_exit;
    r.dma_transfers += s.dma_transfers;
    r.dma_bytes += s.dma_bytes;
    r.dma_inefficient += s.dma_inefficient;
    r.dma_inefficient_bytes += s.dma_inefficient_bytes;
    if (s.ls_peak > r.ls_peak) r.ls_peak = s.ls_peak;
    r.ls_over_budget += s.ls_over_budget;
    r.tag_touch_before_wait += s.tag_touch_before_wait;
    r.tag_reuse_in_flight += s.tag_reuse_in_flight;
    r.tag_pending_at_exit += s.tag_pending_at_exit;
    r.sites.push_back(std::move(s));
  }
  return r;
}

std::string AuditReport::summary() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-22s %10s %12s %8s %10s %6s %7s\n",
                "site", "transfers", "bytes", "ineff", "ls_peak", "over",
                "hazard");
  out += line;
  for (const auto& s : sites) {
    std::snprintf(line, sizeof(line),
                  "%-22s %10llu %12llu %8llu %10llu %6llu %7llu\n",
                  s.site.c_str(),
                  static_cast<unsigned long long>(s.dma_transfers),
                  static_cast<unsigned long long>(s.dma_bytes),
                  static_cast<unsigned long long>(s.dma_inefficient),
                  static_cast<unsigned long long>(s.ls_peak),
                  static_cast<unsigned long long>(s.ls_over_budget),
                  static_cast<unsigned long long>(s.tag_hazards()));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "total: %llu transfers, %llu bytes, %llu inefficient, "
                "ls peak %llu, %llu over budget, %llu tag hazards — %s\n",
                static_cast<unsigned long long>(dma_transfers),
                static_cast<unsigned long long>(dma_bytes),
                static_cast<unsigned long long>(dma_inefficient),
                static_cast<unsigned long long>(ls_peak),
                static_cast<unsigned long long>(ls_over_budget),
                static_cast<unsigned long long>(tag_hazards()),
                clean() ? "CLEAN" : "VIOLATIONS");
  out += line;
  return out;
}

}  // namespace cj2k::cell
