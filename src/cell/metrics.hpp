// Unified metrics registry (DESIGN.md §11).
//
// One flat, deterministically ordered name -> value map that the derived
// metrics pass folds pipeline results into (per-stage occupancy, stall
// attribution, critical-path share, DMA/overlap accounting).  BENCH_JSON,
// PipelineResult consumers, and the CLI trace summary all read from this
// registry instead of ad-hoc counter plumbing; keys are dotted paths
// ("stage.dwt.stall.dma_wait") so the JSON stays flat and greppable.
#pragma once

#include <map>
#include <string>

namespace cj2k::cell {

class MetricsRegistry {
 public:
  void set(const std::string& key, double value) { values_[key] = value; }
  void inc(const std::string& key, double delta = 1.0) {
    values_[key] += delta;
  }

  double get(const std::string& key, double fallback = 0.0) const;
  bool has(const std::string& key) const { return values_.count(key) != 0; }
  bool empty() const { return values_.empty(); }
  std::size_t size() const { return values_.size(); }

  const std::map<std::string, double>& all() const { return values_; }

  /// {"a.b":1.5,...} — keys sorted (std::map order), values printed with
  /// %.9g and non-finite values clamped to 0 so the output is always
  /// valid JSON and byte-deterministic for equal contents.
  std::string to_json() const;

 private:
  std::map<std::string, double> values_;
};

}  // namespace cj2k::cell
