#include "cell/local_store.hpp"

#include "cell/audit.hpp"
#include "common/error.hpp"

namespace cj2k::cell {

LocalStore::LocalStore(std::size_t code_reserve) {
  CJ2K_CHECK_MSG(code_reserve < kCapacity,
                 "code reserve exceeds the Local Store");
  data_capacity_ = kCapacity - code_reserve;
  // Over-align the arena so Local Store offsets are cache-line aligned too.
  arena_ = std::make_unique<std::uint8_t[]>(data_capacity_ + kCacheLineBytes);
}

void* LocalStore::alloc_bytes(std::size_t bytes, std::size_t align) {
  CJ2K_CHECK_MSG(align != 0 && (align & (align - 1)) == 0,
                 "alignment must be a power of two");
  // Base address aligned to a cache line; offsets preserve `align`.
  auto base = reinterpret_cast<std::uintptr_t>(arena_.get());
  const std::uintptr_t aligned_base = round_up(base, kCacheLineBytes);
  std::uintptr_t p = round_up(aligned_base + used_, align);
  const std::size_t new_used = (p - aligned_base) + bytes;
  if (new_used > data_capacity_) {
    throw CellHardwareError("Local Store exhausted: need " +
                            std::to_string(new_used) + " of " +
                            std::to_string(data_capacity_) + " bytes");
  }
  used_ = new_used;
  if (used_ > peak_) peak_ = used_;
  if (audit_ != nullptr) audit_->record_ls(used_, data_capacity_);
  return reinterpret_cast<void*>(p);
}

void LocalStore::reset() { used_ = 0; }

}  // namespace cj2k::cell
