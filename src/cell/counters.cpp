// Intentionally (almost) empty: OpCounters is header-only; this TU anchors
// the header in the build so include errors surface early.
#include "cell/counters.hpp"

namespace cj2k::cell {
static_assert(sizeof(OpCounters) > 0);
}  // namespace cj2k::cell
