// Plain 4-lane vector value types shared by every kernel backend.  These
// carry no instrumentation of their own — the instrumented cell::Simd layer
// charges op counters around them, while the native backend lowers the same
// lane math to host intrinsics.
#pragma once

#include <cstdint>

namespace cj2k::cell {

struct VecF4 {
  float lane[4];
};

struct VecI4 {
  std::int32_t lane[4];
};

}  // namespace cj2k::cell
