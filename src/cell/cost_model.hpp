// Architecture cost models: convert instrumented op counts into simulated
// seconds for the SPE, the PPE, and the Pentium IV comparison target.
//
// Calibration sources (documented per constant in cost_model.cpp):
//  * the paper's Table 1 SPE latencies (mpyh/mpyu 7, a 2, fm 6) and the
//    derived 4-byte-integer-multiply emulation cost;
//  * public Cell/B.E. specs: 3.2 GHz, dual-issue SPE (even pipe arithmetic,
//    odd pipe load/store/shuffle), no dynamic branch prediction, 25.6 GB/s
//    XDR memory per chip;
//  * Pentium IV 3.2 GHz with a 6.4 GB/s front-side bus.
//
// The model is a throughput (issue-slot) model, not a latency simulator:
// the paper's kernels are unrolled streaming loops where issue rate, not
// dependency latency, bounds performance — except for the emulated integer
// multiply and branchy Tier-1 code, which get explicit surcharges.
#pragma once

#include <cstdint>

#include "cell/counters.hpp"

namespace cj2k::cell {

/// Per-architecture tunables (defaults in cost_model.cpp).
struct CostParams {
  double clock_hz = 3.2e9;

  // SPE issue costs (cycles per 128-bit instruction).
  double spe_even_op = 1.0;        ///< add/shift/fm/compare.
  double spe_mul_i_emul = 4.0;     ///< mpyh+mpyh+mpyu+a sequence.
  double spe_odd_op = 1.0;         ///< load/store/shuffle.
  double spe_scalar_op = 1.5;      ///< scalar on the preferred slot.
  double spe_branch = 10.0;        ///< avg incl. ~18-cycle miss, no predictor.
  double spe_t1_cycles_per_symbol = 150.0;

  // PPE (in-order 2-way, 3.2 GHz; scalar code).
  double ppe_scalar_op = 1.1;
  double ppe_float_op = 1.1;
  double ppe_branch = 2.5;
  double ppe_t1_cycles_per_symbol = 85.0;

  // HT (Part 15) cleanup-pass block coder, per coded *sample* (unlike the
  // EBCOT per-MQ-symbol costs above: HT visits each coefficient once, in
  // branch-light 2×2 quads, instead of up to three MQ decisions per bit
  // plane).  Calibrated from published HTJ2K-vs-EBCOT software throughput
  // ratios (~6-10× block-coder speedup) against the per-symbol costs
  // above at the lossy workload's average of ~4 coded symbols per sample
  // — see DESIGN.md §9.
  double spe_ht_cycles_per_sample = 24.0;
  double ppe_ht_cycles_per_sample = 45.0;
  /// Serial rate-allocation cost (Jasper recomputes per-pass R-D data on
  /// the PPE; calibrated so the stage approaches the paper's ~60% share of
  /// lossy encoding at 16 SPEs — see EXPERIMENTS.md).  Used by the
  /// serial-baseline lossy tail; the distributed tail replaces it with the
  /// per-phase costs below.
  double ppe_rate_cycles_per_pass = 16000.0;
  /// Tier-2 + stream assembly cost per output byte (tag trees, packet
  /// headers, buffer copies).  Also the per-byte cost of coding one
  /// precinct stream on a PPE worker in the distributed tail.
  double ppe_t2_cycles_per_byte = 40.0;

  // Distributed lossy tail (overlapped hull build, k-way slope merge,
  // precinct-parallel Tier-2 — DESIGN.md §5).
  /// Per-pass cost of the R-D convex-hull update when it runs fused onto
  /// the worker that just finished the block's Tier-1 coding.  ~15 scalar
  /// ops + 2-3 data-dependent branches per pass; the SPE pays its 10-cycle
  /// unpredicted branches and scalar-on-vector slots, the PPE is leaner.
  double spe_rate_hull_cycles_per_pass = 260.0;
  double ppe_rate_hull_cycles_per_pass = 150.0;
  /// Per-segment cost of the serial k-way merge of per-worker slope-sorted
  /// hull lists on the PPE (heap pop + push over K list heads; the O(S)
  /// residue that replaces the serial O(S log S) sort).
  double ppe_merge_cycles_per_seg = 28.0;
  /// Per-segment cost of one greedy λ-threshold scan iteration (compare,
  /// accumulate, two stores per taken segment).
  double ppe_rate_scan_cycles_per_seg = 10.0;
  /// Per-byte cost of coding one precinct stream on an SPE worker (branchy
  /// bit-packing and tag trees — markedly worse than the PPE's, like T1).
  double spe_t2_cycles_per_byte = 95.0;
  /// Serial stitch pass: concatenating finished precinct packets into the
  /// progression order (bulk copies on the PPE).
  double ppe_t2_stitch_cycles_per_byte = 6.0;
  /// Per-completion overhead of the ordered hand-off between the worker
  /// pool and the streaming stitch consumer (mailbox poll + FIFO pop +
  /// cursor bookkeeping on the PPE; charged once per precinct stream).
  double ppe_handoff_cycles_per_item = 40.0;
  /// PPE streaming throughput for the vector-ish stages, expressed as
  /// cycles per *lane* (the PPE runs them scalar: 4 lanes = 4+ ops).
  double ppe_lane_op = 1.2;

  // Pentium IV (out-of-order, 3.2 GHz, scalar Jasper build: no SIMD).
  double p4_scalar_op = 0.75;
  double p4_float_op = 1.0;
  double p4_fix_mul64 = 4.0;       ///< 32x32->64 fixed-point multiply+shift.
  double p4_branch = 1.2;
  double p4_t1_cycles_per_symbol = 58.0;
  double p4_lane_op = 0.9;
  double p4_mem_bw = 6.4e9;        ///< FSB bandwidth.
  /// Effective traffic multiplier for column-major (vertical) passes that
  /// miss in cache (Jasper's known weakness, paper §3.2).
  double p4_vertical_penalty = 2.0;

  // Memory system.
  double chip_mem_bw = 25.6e9;     ///< XDR per Cell chip.
  double spe_max_bw = 16.0e9;      ///< Peak per-SPE DMA bandwidth.
  double unaligned_dma_penalty = 2.0;  ///< Traffic multiplier when a
                                       ///< transfer misses the cache-line
                                       ///< efficient path.
};

/// Converts counters into seconds on each architecture.
class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(const CostParams& p) : p_(p) {}

  const CostParams& params() const { return p_; }
  CostParams& params() { return p_; }

  /// SPE compute time (no DMA).
  double spe_seconds(const OpCounters& c) const;

  /// PPE compute time for the same counters, modeling the stage run as
  /// scalar code (each vector op = 4 lane ops).
  double ppe_seconds(const OpCounters& c) const;

  /// Pentium IV compute time.  `fixed_point_floats`: the P4 build emulates
  /// float math in fixed point (the paper's lossy comparison condition), so
  /// v_mul_f counts are charged as 64-bit fixed multiplies.
  double p4_seconds(const OpCounters& c, bool fixed_point_floats) const;

  /// Effective DMA bytes after the alignment penalty.
  std::uint64_t effective_dma_bytes(const OpCounters& c) const;

  /// Time for one SPE's DMA traffic at its private peak bandwidth
  /// (contention is applied at machine level).
  double spe_dma_seconds(const OpCounters& c) const;

  /// The asynchronous (tag-grouped) share of spe_dma_seconds — the part a
  /// double-buffered kernel can hide behind compute.  Synchronous get/put
  /// traffic serializes with compute regardless of the overlap mode, so
  /// overlap credit in Machine::compose is *earned* by issuing tagged
  /// transfers, not granted by assumption.
  double spe_dma_async_seconds(const OpCounters& c) const;

  /// One SPE's busy time for a stage: compute plus the DMA latency the
  /// kernel could not hide.  With `overlap_dma` the tagged share runs
  /// behind compute (max), the synchronous remainder serializes; without
  /// it everything serializes.  This is the per-SPE term Machine::compose
  /// maxes over, and the span length the trace draws for the SPE.
  double spe_busy_seconds(const OpCounters& c, bool overlap_dma) const;

  /// The exposed (non-hidden) DMA share of spe_busy_seconds:
  /// spe_busy_seconds - spe_seconds.  Feeds the dma-wait bucket of the
  /// stall attribution and the hidden-vs-exposed split in the trace.
  double spe_dma_exposed_seconds(const OpCounters& c, bool overlap_dma) const;

 private:
  CostParams p_;
};

}  // namespace cj2k::cell
