// Image fidelity metrics for lossy-path verification.
#pragma once

#include "image/image.hpp"

namespace cj2k::metrics {

/// Mean squared error across all components.  Images must share geometry.
double mse(const Image& a, const Image& b);

/// Peak signal-to-noise ratio in dB at the images' bit depth.
/// Returns +inf when the images are identical.
double psnr(const Image& a, const Image& b);

/// True iff every sample of every component is equal.
bool identical(const Image& a, const Image& b);

/// Maximum absolute per-sample difference.
Sample max_abs_diff(const Image& a, const Image& b);

}  // namespace cj2k::metrics
