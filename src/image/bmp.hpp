// Minimal BMP (Windows BITMAPINFOHEADER, uncompressed 24-bit) reader/writer.
// The paper's workload is a .bmp photo transcoded to JPEG2000; this module
// lets the examples consume/produce real files.
#pragma once

#include <string>

#include "image/image.hpp"

namespace cj2k::bmp {

/// Reads a 24-bit uncompressed BMP into a 3-component 8-bit image.
/// Throws IoError on malformed or unsupported files.
Image read(const std::string& path);

/// Writes a 3-component 8-bit image as a 24-bit BMP.  A 1-component image is
/// written as grey (R=G=B).
void write(const std::string& path, const Image& img);

}  // namespace cj2k::bmp
