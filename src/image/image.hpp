// Planar multi-component image container.
//
// Samples are stored as 32-bit signed integers per component plane (the same
// intermediate representation Jasper converts to before encoding), row-major,
// with an explicit per-plane stride.  The stride can carry the cache-line row
// padding required by the data decomposition scheme (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/align.hpp"
#include "common/aligned_buffer.hpp"
#include "common/span2d.hpp"

namespace cj2k {

using Sample = std::int32_t;

/// One component plane: a width×height grid of Sample with padded rows.
class Plane {
 public:
  Plane() = default;

  /// Creates a zero-initialized plane.  `row_align_bytes` pads each row so
  /// row starts are aligned to that many bytes (default: Cell cache line).
  Plane(std::size_t width, std::size_t height,
        std::size_t row_align_bytes = kCacheLineBytes);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  /// Row stride in elements (>= width; width plus padding).
  std::size_t stride() const { return stride_; }

  Span2d<Sample> view() { return {data_.data(), width_, height_, stride_}; }
  Span2d<const Sample> view() const {
    return {data_.data(), width_, height_, stride_};
  }

  Sample& at(std::size_t y, std::size_t x) { return data_[y * stride_ + x]; }
  Sample at(std::size_t y, std::size_t x) const {
    return data_[y * stride_ + x];
  }

  Sample* row(std::size_t y) { return data_.data() + y * stride_; }
  const Sample* row(std::size_t y) const { return data_.data() + y * stride_; }

  /// Total allocated elements, including padding.
  std::size_t allocated_size() const { return data_.size(); }

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::size_t stride_ = 0;
  AlignedBuffer<Sample> data_;  ///< Cache-line aligned base (see DESIGN.md).
};

/// Multi-component image.  All components share geometry (no subsampling —
/// JPEG2000 Part-1 supports it but the paper's workload is 1:1:1 RGB/grey).
class Image {
 public:
  Image() = default;

  /// Creates `components` zero planes of width×height with `bit_depth`-bit
  /// unsigned samples (value range [0, 2^bit_depth)).
  Image(std::size_t width, std::size_t height, std::size_t components,
        unsigned bit_depth = 8);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  std::size_t components() const { return planes_.size(); }
  unsigned bit_depth() const { return bit_depth_; }

  Plane& plane(std::size_t c) { return planes_.at(c); }
  const Plane& plane(std::size_t c) const { return planes_.at(c); }

  /// Total number of samples across all components (excluding padding).
  std::size_t total_samples() const {
    return width_ * height_ * planes_.size();
  }

  /// Raw size in bytes at the nominal bit depth (for bits-per-pixel math).
  std::size_t raw_bytes() const {
    return total_samples() * ((bit_depth_ + 7) / 8);
  }

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  unsigned bit_depth_ = 8;
  std::vector<Plane> planes_;
};

}  // namespace cj2k
