// Binary PGM (P5) / PPM (P6) reader and writer, 8-bit.
#pragma once

#include <string>

#include "image/image.hpp"

namespace cj2k::pnm {

/// Reads a binary PGM (1 component) or PPM (3 components) file.
Image read(const std::string& path);

/// Writes a 1-component image as P5 or a 3-component image as P6.
void write(const std::string& path, const Image& img);

}  // namespace cj2k::pnm
