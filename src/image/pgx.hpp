// PGX — the single-component raw format used by the JPEG2000 reference
// test suite (one header line, then big-endian samples).  Supports 8- and
// 16-bit unsigned grey, which covers the medical/remote-sensing depth
// range this library's 12/16-bit path targets.
#pragma once

#include <string>

#include "image/image.hpp"

namespace cj2k::pgx {

/// Reads a PGX file ("PG ML +<depth> <width> <height>").
Image read(const std::string& path);

/// Writes a 1-component image at its bit depth.
void write(const std::string& path, const Image& img);

}  // namespace cj2k::pgx
