#include "image/metrics.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/error.hpp"

namespace cj2k::metrics {

namespace {
void check_same_geometry(const Image& a, const Image& b) {
  CJ2K_CHECK_MSG(a.width() == b.width() && a.height() == b.height() &&
                     a.components() == b.components(),
                 "metric operands must share geometry");
}
}  // namespace

double mse(const Image& a, const Image& b) {
  check_same_geometry(a, b);
  double acc = 0.0;
  for (std::size_t c = 0; c < a.components(); ++c) {
    for (std::size_t y = 0; y < a.height(); ++y) {
      const Sample* ra = a.plane(c).row(y);
      const Sample* rb = b.plane(c).row(y);
      for (std::size_t x = 0; x < a.width(); ++x) {
        const double d = static_cast<double>(ra[x]) - static_cast<double>(rb[x]);
        acc += d * d;
      }
    }
  }
  return acc / static_cast<double>(a.total_samples());
}

double psnr(const Image& a, const Image& b) {
  const double m = mse(a, b);
  if (m == 0.0) return std::numeric_limits<double>::infinity();
  const double peak = static_cast<double>((1u << a.bit_depth()) - 1);
  return 10.0 * std::log10(peak * peak / m);
}

bool identical(const Image& a, const Image& b) {
  return max_abs_diff(a, b) == 0;
}

Sample max_abs_diff(const Image& a, const Image& b) {
  check_same_geometry(a, b);
  Sample worst = 0;
  for (std::size_t c = 0; c < a.components(); ++c) {
    for (std::size_t y = 0; y < a.height(); ++y) {
      const Sample* ra = a.plane(c).row(y);
      const Sample* rb = b.plane(c).row(y);
      for (std::size_t x = 0; x < a.width(); ++x) {
        const Sample d = std::abs(ra[x] - rb[x]);
        if (d > worst) worst = d;
      }
    }
  }
  return worst;
}

}  // namespace cj2k::metrics
