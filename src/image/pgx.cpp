#include "image/pgx.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace cj2k::pgx {

Image read(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open PGX file: " + path);

  std::string line;
  std::getline(in, line);
  std::istringstream hdr(line);
  std::string magic, endian;
  // Initialized here rather than assigned in the unsigned-default branch
  // below: gcc 12's -Wrestrict misfires on operator=(const char*).
  std::string signstr = "+";
  unsigned depth = 0;
  std::size_t w = 0, h = 0;
  hdr >> magic >> endian;
  if (magic != "PG" || (endian != "ML" && endian != "LM")) {
    throw IoError("not a PGX file: " + path);
  }
  // Sign marker may be fused with the depth ("+8") or separate ("+ 8").
  std::string tok;
  hdr >> tok;
  const auto parse_depth = [&](const std::string& t) -> unsigned {
    if (t.empty() ||
        !std::all_of(t.begin(), t.end(),
                     [](unsigned char c) { return std::isdigit(c); })) {
      throw IoError("malformed PGX depth field: " + path);
    }
    return static_cast<unsigned>(std::stoul(t));
  };
  if (tok == "+" || tok == "-") {
    signstr = tok;
    hdr >> tok;
    depth = parse_depth(tok);
  } else if (!tok.empty() && (tok[0] == '+' || tok[0] == '-')) {
    signstr = tok.substr(0, 1);
    depth = parse_depth(tok.substr(1));
  } else {
    depth = parse_depth(tok);
  }
  hdr >> w >> h;
  if (!hdr) throw IoError("malformed PGX header: " + path);
  if (signstr != "+") throw IoError("signed PGX is not supported: " + path);
  if (depth < 1 || depth > 16 || w == 0 || h == 0) {
    throw IoError("unsupported PGX geometry: " + path);
  }

  Image img(w, h, 1, depth);
  const bool big = endian == "ML";
  const std::size_t bytes = depth > 8 ? 2 : 1;
  std::vector<unsigned char> row(w * bytes);
  for (std::size_t y = 0; y < h; ++y) {
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
    if (!in) throw IoError("short read on PGX data: " + path);
    Sample* dst = img.plane(0).row(y);
    for (std::size_t x = 0; x < w; ++x) {
      if (bytes == 1) {
        dst[x] = row[x];
      } else {
        dst[x] = big ? (row[2 * x] << 8) | row[2 * x + 1]
                     : (row[2 * x + 1] << 8) | row[2 * x];
      }
    }
  }
  return img;
}

void write(const std::string& path, const Image& img) {
  CJ2K_CHECK_MSG(img.components() == 1, "PGX holds a single component");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot create PGX file: " + path);
  out << "PG ML +" << img.bit_depth() << " " << img.width() << " "
      << img.height() << "\n";
  const std::size_t bytes = img.bit_depth() > 8 ? 2 : 1;
  std::vector<unsigned char> row(img.width() * bytes);
  for (std::size_t y = 0; y < img.height(); ++y) {
    const Sample* src = img.plane(0).row(y);
    for (std::size_t x = 0; x < img.width(); ++x) {
      const auto v = static_cast<std::uint16_t>(src[x]);
      if (bytes == 1) {
        row[x] = static_cast<unsigned char>(v);
      } else {
        row[2 * x] = static_cast<unsigned char>(v >> 8);
        row[2 * x + 1] = static_cast<unsigned char>(v);
      }
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  if (!out) throw IoError("short write on PGX file: " + path);
}

}  // namespace cj2k::pgx
