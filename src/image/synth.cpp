#include "image/synth.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace cj2k::synth {

namespace {

Sample clamp8(double v) {
  return static_cast<Sample>(std::clamp(v, 0.0, 255.0));
}

/// Separable box blur with radius r, applied `passes` times; repeated box
/// blurs approximate a Gaussian and give the low-pass spatial correlation of
/// natural photos without an FFT dependency.
void box_blur(std::vector<double>& img, std::size_t w, std::size_t h,
              std::size_t r, int passes) {
  std::vector<double> tmp(img.size());
  for (int p = 0; p < passes; ++p) {
    // Horizontal.
    for (std::size_t y = 0; y < h; ++y) {
      const double* src = img.data() + y * w;
      double* dst = tmp.data() + y * w;
      double acc = 0;
      const std::size_t win = 2 * r + 1;
      for (std::size_t x = 0; x < std::min(win, w); ++x) acc += src[x];
      for (std::size_t x = 0; x < w; ++x) {
        const std::size_t lo = x > r ? x - r : 0;
        const std::size_t hi = std::min(x + r, w - 1);
        dst[x] = acc / static_cast<double>(hi - lo + 1);
        if (hi + 1 < w) acc += src[hi + 1];
        if (x >= r) acc -= src[lo];
      }
    }
    // Vertical.
    for (std::size_t x = 0; x < w; ++x) {
      double acc = 0;
      const std::size_t win = 2 * r + 1;
      for (std::size_t y = 0; y < std::min(win, h); ++y) acc += tmp[y * w + x];
      for (std::size_t y = 0; y < h; ++y) {
        const std::size_t lo = y > r ? y - r : 0;
        const std::size_t hi = std::min(y + r, h - 1);
        img[y * w + x] = acc / static_cast<double>(hi - lo + 1);
        if (hi + 1 < h) acc += tmp[(hi + 1) * w + x];
        if (y >= r) acc -= tmp[lo * w + x];
      }
    }
  }
}

}  // namespace

Image photographic(std::size_t width, std::size_t height,
                   std::size_t components, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t w = width;
  const std::size_t h = height;

  // Luma field: base gradient + ellipses + texture, blurred for correlation.
  std::vector<double> luma(w * h);
  const double gx = rng.next_double() * 0.4 + 0.1;
  const double gy = rng.next_double() * 0.4 + 0.1;
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      luma[y * w + x] = 90.0 +
                        gx * 120.0 * static_cast<double>(x) / static_cast<double>(w) +
                        gy * 120.0 * static_cast<double>(y) / static_cast<double>(h);
    }
  }
  // Random elliptical "objects" create edges and region structure.
  const std::size_t n_objects = 12 + rng.next_below(12);
  for (std::size_t i = 0; i < n_objects; ++i) {
    const double cx = rng.next_double() * static_cast<double>(w);
    const double cy = rng.next_double() * static_cast<double>(h);
    const double rx = (0.05 + 0.2 * rng.next_double()) * static_cast<double>(w);
    const double ry = (0.05 + 0.2 * rng.next_double()) * static_cast<double>(h);
    const double level = rng.next_double() * 160.0 - 80.0;
    const std::size_t x0 = static_cast<std::size_t>(std::max(0.0, cx - rx));
    const std::size_t x1 = static_cast<std::size_t>(
        std::min(static_cast<double>(w), cx + rx + 1));
    const std::size_t y0 = static_cast<std::size_t>(std::max(0.0, cy - ry));
    const std::size_t y1 = static_cast<std::size_t>(
        std::min(static_cast<double>(h), cy + ry + 1));
    for (std::size_t y = y0; y < y1; ++y) {
      for (std::size_t x = x0; x < x1; ++x) {
        const double dx = (static_cast<double>(x) - cx) / rx;
        const double dy = (static_cast<double>(y) - cy) / ry;
        if (dx * dx + dy * dy <= 1.0) luma[y * w + x] += level;
      }
    }
  }
  box_blur(luma, w, h, std::max<std::size_t>(1, w / 256), 2);

  // Overlapping objects can push the field far outside [0,255]; normalize
  // to a photographic range before adding texture so nothing saturates.
  double lo = luma[0], hi = luma[0];
  for (double v : luma) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi > lo ? hi - lo : 1.0;
  for (auto& v : luma) v = 16.0 + (v - lo) / span * 224.0;

  // Fine texture on top of the smooth field (keeps T1 bit planes busy).
  for (auto& v : luma) v += rng.next_gaussian() * 4.0;

  Image img(w, h, components, 8);
  if (components == 1) {
    for (std::size_t y = 0; y < h; ++y) {
      Sample* row = img.plane(0).row(y);
      for (std::size_t x = 0; x < w; ++x) row[x] = clamp8(luma[y * w + x]);
    }
    return img;
  }

  // Chroma: slowly varying tint fields, correlated with luma the way real
  // photos are (RCT/ICT decorrelation then has something to do).
  const double tint_r = rng.next_double() * 0.5 - 0.25;
  const double tint_b = rng.next_double() * 0.5 - 0.25;
  for (std::size_t y = 0; y < h; ++y) {
    Sample* r = img.plane(0).row(y);
    Sample* g = img.plane(1).row(y);
    Sample* b = img.plane(2 < components ? 2 : components - 1).row(y);
    for (std::size_t x = 0; x < w; ++x) {
      const double l = luma[y * w + x];
      const double phase =
          std::sin(static_cast<double>(x) / static_cast<double>(w) * 3.1) +
          std::cos(static_cast<double>(y) / static_cast<double>(h) * 2.3);
      r[x] = clamp8(l * (1.0 + tint_r) + 10.0 * phase);
      g[x] = clamp8(l);
      b[x] = clamp8(l * (1.0 + tint_b) - 8.0 * phase);
    }
  }
  return img;
}

Image gradient(std::size_t width, std::size_t height, std::size_t components) {
  Image img(width, height, components, 8);
  for (std::size_t c = 0; c < components; ++c) {
    for (std::size_t y = 0; y < height; ++y) {
      Sample* row = img.plane(c).row(y);
      for (std::size_t x = 0; x < width; ++x) {
        row[x] = static_cast<Sample>(
            (x * 255 / std::max<std::size_t>(1, width - 1) +
             y * 255 / std::max<std::size_t>(1, height - 1) + c * 37) /
            2 % 256);
      }
    }
  }
  return img;
}

Image noise(std::size_t width, std::size_t height, std::size_t components,
            std::uint64_t seed) {
  Rng rng(seed);
  Image img(width, height, components, 8);
  for (std::size_t c = 0; c < components; ++c) {
    for (std::size_t y = 0; y < height; ++y) {
      Sample* row = img.plane(c).row(y);
      for (std::size_t x = 0; x < width; ++x) {
        row[x] = static_cast<Sample>(rng.next_below(256));
      }
    }
  }
  return img;
}

Image checkerboard(std::size_t width, std::size_t height, std::size_t cell) {
  Image img(width, height, 1, 8);
  for (std::size_t y = 0; y < height; ++y) {
    Sample* row = img.plane(0).row(y);
    for (std::size_t x = 0; x < width; ++x) {
      row[x] = ((x / cell + y / cell) % 2) ? 255 : 0;
    }
  }
  return img;
}

Image skewed(std::size_t width, std::size_t height, std::uint64_t seed) {
  Rng rng(seed);
  Image img(width, height, 1, 8);
  for (std::size_t y = 0; y < height; ++y) {
    Sample* row = img.plane(0).row(y);
    for (std::size_t x = 0; x < width; ++x) {
      if (x < width / 2) {
        row[x] = 128;  // flat half: near-zero coding cost
      } else {
        row[x] = static_cast<Sample>(rng.next_below(256));  // noisy half
      }
    }
  }
  return img;
}

}  // namespace cj2k::synth
