#include "image/image.hpp"

#include "common/error.hpp"

namespace cj2k {

Plane::Plane(std::size_t width, std::size_t height,
             std::size_t row_align_bytes)
    : width_(width), height_(height) {
  CJ2K_CHECK_MSG(width > 0 && height > 0, "plane must be non-empty");
  CJ2K_CHECK_MSG(is_multiple_of(row_align_bytes, sizeof(Sample)),
                 "row alignment must be a multiple of the sample size");
  const std::size_t align_elems = row_align_bytes / sizeof(Sample);
  stride_ = round_up(width, align_elems);
  data_ = AlignedBuffer<Sample>(stride_ * height_, row_align_bytes);
}

Image::Image(std::size_t width, std::size_t height, std::size_t components,
             unsigned bit_depth)
    : width_(width), height_(height), bit_depth_(bit_depth) {
  CJ2K_CHECK_MSG(components >= 1, "image needs at least one component");
  CJ2K_CHECK_MSG(bit_depth >= 1 && bit_depth <= 16,
                 "bit depth must be in [1,16]");
  planes_.reserve(components);
  for (std::size_t c = 0; c < components; ++c) {
    planes_.emplace_back(width, height);
  }
}

}  // namespace cj2k
