#include "image/pnm.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <vector>

#include "common/error.hpp"

namespace cj2k::pnm {

namespace {

/// Reads the next whitespace/comment-delimited unsigned integer token.
std::size_t next_uint(std::istream& in, const std::string& path) {
  int c = in.get();
  while (c != EOF) {
    if (c == '#') {
      while (c != EOF && c != '\n') c = in.get();
    } else if (std::isspace(c)) {
      c = in.get();
    } else {
      break;
    }
  }
  if (c == EOF || !std::isdigit(c)) {
    throw IoError("malformed PNM header: " + path);
  }
  std::size_t v = 0;
  while (c != EOF && std::isdigit(c)) {
    v = v * 10 + static_cast<std::size_t>(c - '0');
    c = in.get();
  }
  return v;
}

}  // namespace

Image read(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open PNM file: " + path);

  char magic[2];
  in.read(magic, 2);
  if (!in || magic[0] != 'P' || (magic[1] != '5' && magic[1] != '6')) {
    throw IoError("not a binary PGM/PPM file: " + path);
  }
  const std::size_t components = magic[1] == '5' ? 1 : 3;
  const std::size_t w = next_uint(in, path);
  const std::size_t h = next_uint(in, path);
  const std::size_t maxval = next_uint(in, path);
  if (maxval == 0 || maxval > 255) {
    throw IoError("only 8-bit PNM is supported: " + path);
  }

  Image img(w, h, components, 8);
  std::vector<unsigned char> row(w * components);
  for (std::size_t y = 0; y < h; ++y) {
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
    if (!in) throw IoError("short read on PNM pixel data: " + path);
    for (std::size_t c = 0; c < components; ++c) {
      Sample* dst = img.plane(c).row(y);
      for (std::size_t x = 0; x < w; ++x) dst[x] = row[x * components + c];
    }
  }
  return img;
}

void write(const std::string& path, const Image& img) {
  CJ2K_CHECK_MSG(img.components() == 1 || img.components() == 3,
                 "PNM writer supports 1 or 3 components");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot create PNM file: " + path);

  const std::size_t components = img.components();
  out << (components == 1 ? "P5" : "P6") << "\n"
      << img.width() << " " << img.height() << "\n255\n";

  std::vector<unsigned char> row(img.width() * components);
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t c = 0; c < components; ++c) {
      const Sample* src = img.plane(c).row(y);
      for (std::size_t x = 0; x < img.width(); ++x) {
        row[x * components + c] =
            static_cast<unsigned char>(std::clamp<Sample>(src[x], 0, 255));
      }
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  if (!out) throw IoError("short write on PNM file: " + path);
}

}  // namespace cj2k::pnm
