// Synthetic test-image generators.
//
// The paper's workload is a 28.3 MB natural photograph (waltham_dial.bmp,
// ~3172×3116 RGB).  We cannot ship that file, so `photographic` synthesizes
// an image with natural-photo statistics: strong spatial correlation
// (low-pass 1/f-like energy), object edges, and texture.  That matters
// because EBCOT Tier-1 cost and DWT energy compaction both depend on content
// smoothness, and the paper's load-balancing argument (§3.2) depends on code
// blocks having *unequal* coding cost.
#pragma once

#include <cstdint>

#include "image/image.hpp"

namespace cj2k::synth {

/// Natural-photo-statistics image: smooth gradients + random ellipses/edges
/// + fine Gaussian texture.  Deterministic for a given seed.
Image photographic(std::size_t width, std::size_t height,
                   std::size_t components = 3, std::uint64_t seed = 1);

/// Smooth 2-D gradient (cheapest content; nearly all-zero wavelet detail).
Image gradient(std::size_t width, std::size_t height,
               std::size_t components = 1);

/// Uniform random noise (worst case for compression; maximal T1 work).
Image noise(std::size_t width, std::size_t height,
            std::size_t components = 1, std::uint64_t seed = 2);

/// Checkerboard with the given cell size (hard edges; stresses sign coding).
Image checkerboard(std::size_t width, std::size_t height,
                   std::size_t cell = 8);

/// Half smooth / half noise: maximally *skewed* per-code-block cost, the
/// workload used to demonstrate the work-queue's load balancing.
Image skewed(std::size_t width, std::size_t height, std::uint64_t seed = 3);

}  // namespace cj2k::synth
