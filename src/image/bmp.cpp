#include "image/bmp.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/error.hpp"

namespace cj2k::bmp {

namespace {

std::uint32_t load_le32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint16_t load_le16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

void store_le32(unsigned char* p, std::uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

void store_le16(unsigned char* p, std::uint16_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
}

constexpr std::size_t kFileHeaderSize = 14;
constexpr std::size_t kInfoHeaderSize = 40;

}  // namespace

Image read(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open BMP file: " + path);

  unsigned char hdr[kFileHeaderSize + kInfoHeaderSize];
  in.read(reinterpret_cast<char*>(hdr), sizeof(hdr));
  if (!in) throw IoError("short read on BMP header: " + path);

  if (hdr[0] != 'B' || hdr[1] != 'M') {
    throw IoError("not a BMP file: " + path);
  }
  const std::uint32_t data_offset = load_le32(hdr + 10);
  const std::uint32_t info_size = load_le32(hdr + 14);
  if (info_size < kInfoHeaderSize) {
    throw IoError("unsupported BMP header variant: " + path);
  }
  const std::int32_t width = static_cast<std::int32_t>(load_le32(hdr + 18));
  const std::int32_t height_raw =
      static_cast<std::int32_t>(load_le32(hdr + 22));
  const std::uint16_t planes = load_le16(hdr + 26);
  const std::uint16_t bpp = load_le16(hdr + 28);
  const std::uint32_t compression = load_le32(hdr + 30);

  if (planes != 1 || bpp != 24 || compression != 0) {
    throw IoError("only uncompressed 24-bit BMP is supported: " + path);
  }
  if (width <= 0 || height_raw == 0) {
    throw IoError("bad BMP geometry: " + path);
  }
  const bool bottom_up = height_raw > 0;
  const std::size_t height =
      static_cast<std::size_t>(bottom_up ? height_raw : -height_raw);
  const std::size_t w = static_cast<std::size_t>(width);

  in.seekg(static_cast<std::streamoff>(data_offset), std::ios::beg);
  const std::size_t row_bytes = round_up(w * 3, 4);
  std::vector<unsigned char> row(row_bytes);

  Image img(w, height, 3, 8);
  for (std::size_t i = 0; i < height; ++i) {
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row_bytes));
    if (!in) throw IoError("short read on BMP pixel data: " + path);
    const std::size_t y = bottom_up ? height - 1 - i : i;
    Sample* r = img.plane(0).row(y);
    Sample* g = img.plane(1).row(y);
    Sample* b = img.plane(2).row(y);
    for (std::size_t x = 0; x < w; ++x) {
      b[x] = row[x * 3 + 0];
      g[x] = row[x * 3 + 1];
      r[x] = row[x * 3 + 2];
    }
  }
  return img;
}

void write(const std::string& path, const Image& img) {
  CJ2K_CHECK_MSG(img.components() == 3 || img.components() == 1,
                 "BMP writer supports 1 or 3 components");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot create BMP file: " + path);

  const std::size_t w = img.width();
  const std::size_t h = img.height();
  const std::size_t row_bytes = round_up(w * 3, 4);
  const std::size_t data_bytes = row_bytes * h;
  const std::size_t file_bytes = kFileHeaderSize + kInfoHeaderSize + data_bytes;

  unsigned char hdr[kFileHeaderSize + kInfoHeaderSize] = {};
  hdr[0] = 'B';
  hdr[1] = 'M';
  store_le32(hdr + 2, static_cast<std::uint32_t>(file_bytes));
  store_le32(hdr + 10, kFileHeaderSize + kInfoHeaderSize);
  store_le32(hdr + 14, kInfoHeaderSize);
  store_le32(hdr + 18, static_cast<std::uint32_t>(w));
  store_le32(hdr + 22, static_cast<std::uint32_t>(h));
  store_le16(hdr + 26, 1);
  store_le16(hdr + 28, 24);
  store_le32(hdr + 34, static_cast<std::uint32_t>(data_bytes));
  out.write(reinterpret_cast<const char*>(hdr), sizeof(hdr));

  std::vector<unsigned char> row(row_bytes, 0);
  const bool grey = img.components() == 1;
  for (std::size_t i = 0; i < h; ++i) {
    const std::size_t y = h - 1 - i;  // bottom-up
    const Sample* r = img.plane(0).row(y);
    const Sample* g = grey ? r : img.plane(1).row(y);
    const Sample* b = grey ? r : img.plane(2).row(y);
    for (std::size_t x = 0; x < w; ++x) {
      const auto clamp8 = [](Sample v) {
        return static_cast<unsigned char>(std::clamp<Sample>(v, 0, 255));
      };
      row[x * 3 + 0] = clamp8(b[x]);
      row[x * 3 + 1] = clamp8(g[x]);
      row[x * 3 + 2] = clamp8(r[x]);
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row_bytes));
  }
  if (!out) throw IoError("short write on BMP file: " + path);
}

}  // namespace cj2k::bmp
